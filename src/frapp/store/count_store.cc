#include "frapp/store/count_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "frapp/common/check.h"
#include "frapp/data/boolean_vertical_index.h"
#include "frapp/data/sharded_table.h"

namespace frapp {
namespace store {

// The substrate chunking is the seeded-chunk alignment: one substrate chunk
// per perturbation chunk, so append pushes whole chunks and expiry pops them.
static_assert(CountStore::kSubstrateChunkRows == data::kShardAlignmentRows,
              "substrate chunks must match the perturbation chunk alignment");

namespace {

constexpr char kMagic[8] = {'F', 'R', 'A', 'P', 'P', 'C', 'N', 'T'};
constexpr uint32_t kFormatVersion = 1;
// Magic + version + kind + six u64 fields, before the variable-length part.
constexpr size_t kFixedHeaderBytes = 8 + 4 + 4 + 6 * 8;
constexpr size_t kChecksumBytes = 8;

void AppendBytes(std::string& buf, const void* data, size_t n) {
  buf.append(static_cast<const char*>(data), n);
}

void AppendU32(std::string& buf, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  AppendBytes(buf, b, 4);
}

void AppendU64(std::string& buf, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  AppendBytes(buf, b, 8);
}

void AppendString(std::string& buf, const std::string& s) {
  AppendU32(buf, static_cast<uint32_t>(s.size()));
  AppendBytes(buf, s.data(), s.size());
}

uint64_t Checksum(const char* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Bounds-checked forward reader over the loaded file image. Every Read*
/// fails cleanly instead of running off the end, so a file that passes the
/// checksum but carries an absurd length field still cannot crash the
/// loader.
struct Cursor {
  const char* data;
  size_t size;
  size_t pos = 0;
  const std::string& path;

  bool Need(size_t n) const { return size - pos >= n; }

  Status Truncated(const std::string& what) const {
    return Status::InvalidArgument("'" + path + "' ends inside its " + what);
  }

  StatusOr<uint32_t> ReadU32(const std::string& what) {
    if (!Need(4)) return Truncated(what);
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(data[pos + i]);
    pos += 4;
    return v;
  }

  StatusOr<uint64_t> ReadU64(const std::string& what) {
    if (!Need(8)) return Truncated(what);
    uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(data[pos + i]);
    pos += 8;
    return v;
  }

  StatusOr<std::string> ReadString(const std::string& what) {
    FRAPP_ASSIGN_OR_RETURN(const uint32_t n, ReadU32(what));
    if (!Need(n)) return Truncated(what);
    std::string s(data + pos, n);
    pos += n;
    return s;
  }

  Status ReadWords(const std::string& what, uint64_t* out, size_t n) {
    if (!Need(n * 8)) return Truncated(what);
    for (size_t w = 0; w < n; ++w) {
      uint64_t v = 0;
      for (int i = 7; i >= 0; --i) {
        v = (v << 8) | static_cast<uint8_t>(data[pos + w * 8 + i]);
      }
      out[w] = v;
    }
    pos += n * 8;
    return Status::OK();
  }
};

}  // namespace

StoreKey KeyOfItemset(const mining::Itemset& itemset) {
  StoreKey key;
  key.reserve(itemset.items().size());
  for (const mining::Item& item : itemset.items()) {
    key.push_back((static_cast<uint32_t>(item.attribute) << 16) |
                  item.category);
  }
  return key;
}

StoreKey KeyOfPositions(const std::vector<size_t>& positions) {
  StoreKey key;
  key.reserve(positions.size());
  for (size_t p : positions) key.push_back(static_cast<uint32_t>(p));
  return key;
}

size_t StoreKeyHash::operator()(const StoreKey& key) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint32_t word : key) {
    for (int i = 0; i < 4; ++i) {
      h ^= (word >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return static_cast<size_t>(h);
}

const std::vector<int64_t>* CountStore::Find(const StoreKey& key) const {
  const auto it = entries_.find(key);
  return it == entries_.end() ? nullptr : &it->second.counts;
}

void CountStore::Put(const StoreKey& key, std::vector<int64_t> counts) {
  Entry& entry = entries_[key];
  entry.counts = std::move(counts);
  entry.epoch = epoch_;
}

size_t CountStore::Commit(uint64_t window_begin, uint64_t high_water) {
  size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.epoch != epoch_) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  window_begin_ = window_begin;
  high_water_ = high_water;
  return dropped;
}

void CountStore::UpdateSubstrate(uint64_t planes, size_t drop_leading,
                                 std::vector<SubstrateChunk> appended) {
  FRAPP_CHECK_LE(drop_leading, substrate_.size());
  for (const SubstrateChunk& chunk : appended) {
    FRAPP_CHECK_EQ(chunk.words.size(), planes * kSubstrateChunkWords);
  }
  // A plane-count change only makes sense when the old chunks are all gone
  // (first materialization, or a window move that swallowed the store).
  if (planes != substrate_planes_) {
    FRAPP_CHECK_EQ(drop_leading, substrate_.size());
  }
  substrate_.erase(substrate_.begin(),
                   substrate_.begin() + static_cast<ptrdiff_t>(drop_leading));
  for (SubstrateChunk& chunk : appended) {
    substrate_.push_back(std::move(chunk));
  }
  substrate_planes_ = planes;
}

Status CountStore::SaveToFile(const std::string& path) const {
  std::string buf;
  AppendBytes(buf, kMagic, sizeof(kMagic));
  AppendU32(buf, kFormatVersion);
  AppendU32(buf, static_cast<uint32_t>(identity_.kind));
  AppendU64(buf, identity_.schema_fingerprint);
  AppendU64(buf, identity_.perturb_seed);
  AppendU64(buf, identity_.retention_bits);
  AppendU64(buf, identity_.num_bits);
  AppendU64(buf, window_begin_);
  AppendU64(buf, high_water_);
  AppendString(buf, identity_.source_id);
  AppendString(buf, identity_.spec_key);

  // Sorted keys make the byte image a pure function of the logical store,
  // so two runs that materialize the same counts write identical files.
  std::vector<const StoreKey*> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_) keys.push_back(&key);
  std::sort(keys.begin(), keys.end(),
            [](const StoreKey* a, const StoreKey* b) { return *a < *b; });

  AppendU64(buf, entries_.size());
  for (const StoreKey* key : keys) {
    AppendU32(buf, static_cast<uint32_t>(key->size()));
    for (uint32_t word : *key) AppendU32(buf, word);
    const std::vector<int64_t>& counts = entries_.at(*key).counts;
    AppendU32(buf, static_cast<uint32_t>(counts.size()));
    for (int64_t c : counts) AppendU64(buf, static_cast<uint64_t>(c));
  }

  // The substrate must tile the committed window exactly; a store that
  // violates that would poison every later incremental run, so refuse to
  // write it at all.
  if (!substrate_.empty() &&
      substrate_.size() * kSubstrateChunkRows != high_water_ - window_begin_) {
    return Status::Internal(
        "substrate does not tile the window: " +
        std::to_string(substrate_.size()) + " chunks for rows [" +
        std::to_string(window_begin_) + ", " + std::to_string(high_water_) +
        ")");
  }
  AppendU64(buf, substrate_planes_);
  AppendU64(buf, substrate_.size());
  for (const SubstrateChunk& chunk : substrate_) {
    if (chunk.words.size() != substrate_planes_ * kSubstrateChunkWords) {
      return Status::Internal("substrate chunk has wrong plane arity");
    }
    for (uint64_t w : chunk.words) AppendU64(buf, w);
  }
  AppendU64(buf, Checksum(buf.data(), buf.size()));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open '" + tmp + "' for writing");
    out.write(buf.data(), static_cast<std::streamsize>(buf.size()));
    if (!out) return Status::IOError("write failure on '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename '" + tmp + "' to '" + path + "'");
  }
  return Status::OK();
}

StatusOr<CountStore> CountStore::LoadFromFile(const std::string& path) {
  std::string buf;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::IOError("cannot open '" + path + "' for reading");
    in.seekg(0, std::ios::end);
    const std::streamoff size = in.tellg();
    if (size < 0) return Status::IOError("cannot size '" + path + "'");
    in.seekg(0);
    buf.resize(static_cast<size_t>(size));
    in.read(buf.data(), size);
    if (in.gcount() != size) {
      return Status::IOError("read failure on '" + path + "'");
    }
  }
  if (buf.size() < kFixedHeaderBytes + kChecksumBytes) {
    return Status::InvalidArgument("'" + path +
                                   "' is too short to hold a count store");
  }
  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a FRAPP count store file");
  }
  const size_t payload = buf.size() - kChecksumBytes;
  Cursor cursor{buf.data(), payload, sizeof(kMagic), path};
  FRAPP_ASSIGN_OR_RETURN(const uint32_t version, cursor.ReadU32("header"));
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        "'" + path + "' has format version " + std::to_string(version) +
        ", this reader understands " + std::to_string(kFormatVersion));
  }
  // Checksum next: nothing past the version field is trusted before the
  // whole image validates.
  uint64_t want_checksum = 0;
  for (int i = 7; i >= 0; --i) {
    want_checksum =
        (want_checksum << 8) | static_cast<uint8_t>(buf[payload + i]);
  }
  if (Checksum(buf.data(), payload) != want_checksum) {
    return Status::InvalidArgument(
        "'" + path + "' fails its checksum (truncated or corrupted)");
  }

  FRAPP_ASSIGN_OR_RETURN(const uint32_t kind_word, cursor.ReadU32("header"));
  if (kind_word > static_cast<uint32_t>(CountKind::kBooleanSuperset)) {
    return Status::InvalidArgument("'" + path + "' has unknown count kind " +
                                   std::to_string(kind_word));
  }
  StoreIdentity identity;
  identity.kind = static_cast<CountKind>(kind_word);
  FRAPP_ASSIGN_OR_RETURN(identity.schema_fingerprint, cursor.ReadU64("header"));
  FRAPP_ASSIGN_OR_RETURN(identity.perturb_seed, cursor.ReadU64("header"));
  FRAPP_ASSIGN_OR_RETURN(identity.retention_bits, cursor.ReadU64("header"));
  FRAPP_ASSIGN_OR_RETURN(identity.num_bits, cursor.ReadU64("header"));
  FRAPP_ASSIGN_OR_RETURN(const uint64_t window_begin, cursor.ReadU64("header"));
  FRAPP_ASSIGN_OR_RETURN(const uint64_t high_water, cursor.ReadU64("header"));
  FRAPP_ASSIGN_OR_RETURN(identity.source_id, cursor.ReadString("source id"));
  FRAPP_ASSIGN_OR_RETURN(identity.spec_key, cursor.ReadString("spec key"));
  if (window_begin > high_water) {
    return Status::InvalidArgument("'" + path +
                                   "' has window begin past its high water");
  }

  CountStore store(std::move(identity));
  store.window_begin_ = window_begin;
  store.high_water_ = high_water;
  FRAPP_ASSIGN_OR_RETURN(const uint64_t num_entries,
                         cursor.ReadU64("entry count"));
  store.entries_.reserve(static_cast<size_t>(num_entries));
  for (uint64_t e = 0; e < num_entries; ++e) {
    FRAPP_ASSIGN_OR_RETURN(const uint32_t key_len, cursor.ReadU32("entry key"));
    // Boolean keys are capped by the 2^k transform; support keys by the
    // u16 attribute space (one item per attribute).
    const uint32_t max_key_len =
        store.identity_.kind == CountKind::kSupport
            ? 0xffffu
            : data::BooleanVerticalIndex::kMaxPatternLength;
    if (key_len == 0 || key_len > max_key_len) {
      return Status::InvalidArgument("'" + path + "' entry " +
                                     std::to_string(e) +
                                     " has implausible key length " +
                                     std::to_string(key_len));
    }
    StoreKey key(key_len);
    for (uint32_t& word : key) {
      FRAPP_ASSIGN_OR_RETURN(word, cursor.ReadU32("entry key"));
    }
    FRAPP_ASSIGN_OR_RETURN(const uint32_t counts_len,
                           cursor.ReadU32("entry counts"));
    const uint32_t want_len =
        store.identity_.kind == CountKind::kSupport ? 1u : (1u << key_len);
    if (counts_len != want_len) {
      return Status::InvalidArgument(
          "'" + path + "' entry " + std::to_string(e) + " has " +
          std::to_string(counts_len) + " counts, kind requires " +
          std::to_string(want_len));
    }
    Entry entry;
    entry.counts.resize(counts_len);
    for (int64_t& c : entry.counts) {
      FRAPP_ASSIGN_OR_RETURN(const uint64_t raw, cursor.ReadU64("entry counts"));
      c = static_cast<int64_t>(raw);
    }
    if (!store.entries_.emplace(std::move(key), std::move(entry)).second) {
      return Status::InvalidArgument("'" + path + "' entry " +
                                     std::to_string(e) + " repeats a key");
    }
  }
  FRAPP_ASSIGN_OR_RETURN(const uint64_t planes,
                         cursor.ReadU64("substrate planes"));
  FRAPP_ASSIGN_OR_RETURN(const uint64_t num_chunks,
                         cursor.ReadU64("substrate chunk count"));
  if (num_chunks != 0 &&
      num_chunks * kSubstrateChunkRows != high_water - window_begin) {
    return Status::InvalidArgument(
        "'" + path + "' substrate (" + std::to_string(num_chunks) +
        " chunks) does not tile its window [" + std::to_string(window_begin) +
        ", " + std::to_string(high_water) + ")");
  }
  // Overflow-safe sizing: every stored word costs 8 bytes, so the plane and
  // chunk counts are bounded by the bytes actually left in the image.
  const uint64_t remaining_words = (payload - cursor.pos) / 8;
  const uint64_t chunk_words = planes * kSubstrateChunkWords;
  if (num_chunks != 0 &&
      (planes == 0 || planes > remaining_words ||
       chunk_words > remaining_words / num_chunks)) {
    return cursor.Truncated("substrate");
  }
  store.substrate_planes_ = planes;
  store.substrate_.resize(static_cast<size_t>(num_chunks));
  for (SubstrateChunk& chunk : store.substrate_) {
    chunk.words.resize(static_cast<size_t>(chunk_words));
    FRAPP_RETURN_IF_ERROR(
        cursor.ReadWords("substrate", chunk.words.data(), chunk.words.size()));
  }
  if (cursor.pos != payload) {
    return Status::InvalidArgument("'" + path +
                                   "' carries bytes past its last entry");
  }
  return store;
}

}  // namespace store
}  // namespace frapp
