// Materialized per-candidate count store: the persistence half of
// incremental append-only mining (frapp/store/incremental_mine.h).
//
// The seeded-chunk contract (random/chunk_rng.h) makes perturbation a pure
// function of (chunk index, global seed), and both counting substrates are
// LINEAR over row partitions — categorical itemset counts add directly, and
// boolean superset-intersection vectors add because the Mobius transform to
// exact-pattern counts is linear and can run per-query after any merge. So
// the counts of rows [window_begin, high_water) never need recounting: a
// store keeps them materialized per candidate, and growing the data by
// whole chunks only costs counting the NEW chunks.
//
// A store is only reusable when it describes EXACTLY the same perturbed
// counting problem, so its identity pins everything that could change a
// single count bit: the source id, the schema fingerprint, the mechanism's
// canonical spec key (exact float bit patterns — dist::CanonicalSpecKey),
// the perturbation seed, the counting kind, the boolean one-hot width, and
// the retention threshold's exact double bits (which decides WHICH
// candidates are retained, see incremental_mine.h). Loading a file whose
// identity differs from the requested one is an error, never a silent
// re-derivation from mismatched counts.
//
// On-disk format FRAPPCNT (style of data/shard_io.h, little-endian):
//
//   offset  size  field
//   0       8     magic "FRAPPCNT"
//   8       4     u32 format version (1)
//   12      4     u32 count kind (0 = support, 1 = boolean superset)
//   16      8     u64 schema fingerprint (data::SchemaFingerprint)
//   24      8     u64 perturbation seed
//   32      8     u64 retention threshold, IEEE-754 double bit pattern
//   40      8     u64 boolean one-hot width (0 for support kind)
//   48      8     u64 window begin row (chunk-aligned)
//   56      8     u64 high-water row (chunk-aligned)
//   64      ...   u32 length + bytes: source id
//   ...     ...   u32 length + bytes: canonical mechanism spec key
//   ...     8     u64 entry count
//   ...     ...   entries, sorted by key: u32 key length, key words (u32
//                 each), u32 count length, counts (int64 bit patterns)
//   ...     8     u64 substrate planes per chunk (0 = no substrate)
//   ...     8     u64 substrate chunk count
//   ...     ...   substrate chunks in window order, each planes * 128
//                 u64 words: the raw bitmap planes of that chunk's
//                 vertical index (8192 rows per chunk)
//   end-8   8     u64 FNV-1a checksum of every preceding byte
//
// The substrate is the perturbed database itself, materialized as per-chunk
// bitmap-index planes. It is what makes store MISSES cheap: a candidate
// outside the retained superset is recounted by SIMD scans over the stored
// planes — no re-perturbation, no second pass over the source — and window
// expiry counts the expired chunks from the same planes, so the source
// never needs to cover rows that have already expired. When the substrate
// is present it must tile the window exactly: chunk count * 8192 ==
// high_water - window_begin.
//
// The checksum is validated before anything else is trusted, so a truncated
// or bit-flipped file is rejected up front; writes go through a temp file
// plus rename, so a crashed save never leaves a half-written store behind.

#ifndef FRAPP_STORE_COUNT_STORE_H_
#define FRAPP_STORE_COUNT_STORE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/mining/itemset.h"

namespace frapp {
namespace store {

/// What one stored count vector means.
enum class CountKind : uint32_t {
  /// Categorical mechanisms (DET-GD, RAN-GD, IND-GD): key encodes an
  /// itemset, the vector is one perturbed support count.
  kSupport = 0,
  /// Boolean mechanisms (MASK, C&P): key lists bit positions, the vector is
  /// the 2^k PRE-Mobius superset-intersection counts.
  kBooleanSuperset = 1,
};

/// Everything that must match bit-for-bit for stored counts to be reusable.
struct StoreIdentity {
  std::string source_id;
  uint64_t schema_fingerprint = 0;
  std::string spec_key;
  uint64_t perturb_seed = 0;
  /// Exact IEEE-754 bits of the superset retention threshold.
  uint64_t retention_bits = 0;
  CountKind kind = CountKind::kSupport;
  /// Boolean one-hot width; 0 for the support kind.
  uint64_t num_bits = 0;

  friend bool operator==(const StoreIdentity&, const StoreIdentity&) = default;
};

/// Key of one stored candidate. Support kind: one word per item,
/// (attribute << 16) | category, in itemset order. Boolean kind: the sorted
/// bit positions.
using StoreKey = std::vector<uint32_t>;

/// StoreKey of a categorical itemset.
StoreKey KeyOfItemset(const mining::Itemset& itemset);

/// StoreKey of a boolean candidate's bit positions.
StoreKey KeyOfPositions(const std::vector<size_t>& positions);

/// FNV-1a over the key words; shared by the store and the per-pass count
/// maps of the incremental driver.
struct StoreKeyHash {
  size_t operator()(const StoreKey& key) const;
};

/// One chunk of the materialized perturbed substrate: the raw bitmap planes
/// of the chunk's vertical index (mining::VerticalIndex::raw_bits() for the
/// support kind, data::BooleanVerticalIndex::raw_bits() for the boolean
/// kind), covering exactly kSubstrateChunkRows rows — substrate_planes *
/// kSubstrateChunkWords words, plane-major.
struct SubstrateChunk {
  std::vector<uint64_t> words;
};

/// The materialized counts of rows [window_begin, high_water) for one
/// perturbed counting problem. Mutation follows a run protocol that keeps
/// the store self-cleaning: BeginRun, then Put every candidate the current
/// superset retains (fully merged values), then Commit — which advances the
/// window and DROPS entries the run did not touch, so candidates that fell
/// out of the superset do not accumulate forever.
class CountStore {
 public:
  /// Rows per substrate chunk — the seeded-chunk alignment
  /// (data::kShardAlignmentRows; static_assert'd equal in the .cc).
  static constexpr uint64_t kSubstrateChunkRows = 8192;
  /// Words per bitmap plane of one substrate chunk.
  static constexpr uint64_t kSubstrateChunkWords = kSubstrateChunkRows / 64;

  explicit CountStore(StoreIdentity identity)
      : identity_(std::move(identity)) {}

  const StoreIdentity& identity() const { return identity_; }

  /// First row covered by the stored counts (rows before it have expired
  /// out of the window). Chunk-aligned.
  uint64_t window_begin() const { return window_begin_; }

  /// One past the last stored row. Chunk-aligned; the partial tail beyond
  /// it is always counted fresh, never stored.
  uint64_t high_water() const { return high_water_; }

  size_t num_entries() const { return entries_.size(); }

  /// Stored counts for `key`, or nullptr when the key is not materialized.
  const std::vector<int64_t>* Find(const StoreKey& key) const;

  /// Starts a mutation run: Puts from now on mark their entries as live for
  /// the next Commit.
  void BeginRun() { ++epoch_; }

  /// Stores the fully merged counts of `key` for the run's target window
  /// and marks the entry live. Overwrites any previous value.
  void Put(const StoreKey& key, std::vector<int64_t> counts);

  /// Ends the run: advances to [window_begin, high_water) and erases every
  /// entry the run did not Put. Returns how many entries were dropped.
  size_t Commit(uint64_t window_begin, uint64_t high_water);

  /// Bitmap planes per substrate chunk; 0 when no substrate is materialized.
  uint64_t substrate_planes() const { return substrate_planes_; }

  /// The materialized substrate chunks, window order (chunk of rows
  /// [window_begin, window_begin + kSubstrateChunkRows) first).
  const std::vector<SubstrateChunk>& substrate() const { return substrate_; }

  /// Replaces the substrate for the window being committed: drops the
  /// `drop_leading` expired chunks from the front and appends the delta
  /// chunks. Call alongside Commit, after the run has fully succeeded; every
  /// appended chunk must carry `planes * kSubstrateChunkWords` words.
  void UpdateSubstrate(uint64_t planes, size_t drop_leading,
                       std::vector<SubstrateChunk> appended);

  /// Serializes to `path` via a temp file + rename, so readers never see a
  /// partial store.
  Status SaveToFile(const std::string& path) const;

  /// Deserializes a store, validating magic, version, checksum, and every
  /// length field before trusting any of it.
  static StatusOr<CountStore> LoadFromFile(const std::string& path);

 private:
  struct Entry {
    std::vector<int64_t> counts;
    uint64_t epoch = 0;
  };

  StoreIdentity identity_;
  uint64_t window_begin_ = 0;
  uint64_t high_water_ = 0;
  uint64_t epoch_ = 0;
  std::unordered_map<StoreKey, Entry, StoreKeyHash> entries_;
  uint64_t substrate_planes_ = 0;
  std::vector<SubstrateChunk> substrate_;
};

}  // namespace store
}  // namespace frapp

#endif  // FRAPP_STORE_COUNT_STORE_H_
