#include "frapp/data/census.h"

namespace frapp {
namespace data {
namespace census {

CategoricalSchema Schema() {
  std::vector<Attribute> attrs = {
      {"age", {"(15-35]", "(35-55]", "(55-75]", "> 75"}},
      {"fnlwgt",
       {"(0-1e5]", "(1e5-2e5]", "(2e5-3e5]", "(3e5-4e5]", "> 4e5"}},
      {"hours-per-week", {"(0-20]", "(20-40]", "(40-60]", "(60-80]", "> 80"}},
      {"race",
       {"White", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other", "Black"}},
      {"sex", {"Female", "Male"}},
      {"native-country", {"United-States", "Other"}},
  };
  StatusOr<CategoricalSchema> schema = CategoricalSchema::Create(std::move(attrs));
  FRAPP_CHECK(schema.ok()) << schema.status().ToString();
  return *std::move(schema);
}

StatusOr<ChainGenerator> Generator() {
  // Marginals/conditionals calibrated to the UCI Adult dataset: dominant
  // categories (White ~85%, US ~90%, Male ~67%, 20-40 hours ~60%) plus a few
  // rare (<2%) categories so that Table 3's "19 frequent singletons out of
  // 23 categories" profile is reproduced.
  std::vector<ChainAttributeSpec> specs(6);

  // age: young adults dominate an adult census extract.
  specs[0].parent = -1;
  specs[0].distributions = {{0.45, 0.41, 0.13, 0.01}};

  // fnlwgt (census sampling weight), mildly age-dependent.
  specs[1].parent = 0;
  specs[1].distributions = {
      {0.07, 0.44, 0.31, 0.13, 0.05},   // (15-35]
      {0.08, 0.45, 0.30, 0.12, 0.05},   // (35-55]
      {0.10, 0.47, 0.28, 0.10, 0.05},   // (55-75]
      {0.12, 0.50, 0.26, 0.08, 0.04},   // > 75
  };

  // hours-per-week | age: prime-age workers cluster at full time.
  specs[2].parent = 0;
  specs[2].distributions = {
      {0.12, 0.62, 0.22, 0.030, 0.010},  // (15-35]
      {0.05, 0.60, 0.30, 0.040, 0.010},  // (35-55]
      {0.10, 0.65, 0.20, 0.040, 0.010},  // (55-75]
      {0.50, 0.40, 0.08, 0.015, 0.005},  // > 75
  };

  // race: Adult marginals; Amer-Indian-Eskimo and Other are the rare ones.
  specs[3].parent = -1;
  specs[3].distributions = {{0.854, 0.032, 0.010, 0.008, 0.096}};

  // sex: Adult is ~2/3 male.
  specs[4].parent = -1;
  specs[4].distributions = {{0.33, 0.67}};

  // native-country | race: gives the ~90% United-States marginal with the
  // natural race/country correlation.
  specs[5].parent = 3;
  specs[5].distributions = {
      {0.92, 0.08},  // White
      {0.35, 0.65},  // Asian-Pac-Islander
      {0.98, 0.02},  // Amer-Indian-Eskimo
      {0.40, 0.60},  // Other
      {0.88, 0.12},  // Black
  };

  return ChainGenerator::Create(Schema(), std::move(specs));
}

StatusOr<CategoricalTable> MakeDataset(size_t n, uint64_t seed) {
  FRAPP_ASSIGN_OR_RETURN(ChainGenerator generator, Generator());
  return generator.Generate(n, seed);
}

}  // namespace census
}  // namespace data
}  // namespace frapp
