#include "frapp/data/discretize.h"

#include <cmath>
#include <sstream>

namespace frapp {
namespace data {

namespace {
// Prints bin edges compactly: integers without decimals, big numbers in the
// paper's "1e5" style.
std::string EdgeToString(double edge) {
  // Big round numbers render in the paper's "3e5" style (Table 1's fnlwgt).
  if (edge != 0.0 && std::fabs(edge) >= 1e5) {
    const int exponent = static_cast<int>(std::floor(std::log10(std::fabs(edge))));
    const double mantissa = edge / std::pow(10.0, exponent);
    if (std::fabs(mantissa - std::round(mantissa)) < 1e-9) {
      std::ostringstream os;
      os << static_cast<long long>(std::round(mantissa)) << "e" << exponent;
      return os.str();
    }
  }
  if (edge == std::floor(edge) && std::fabs(edge) < 1e15) {
    std::ostringstream os;
    os << static_cast<long long>(edge);
    return os.str();
  }
  std::ostringstream os;
  os << edge;
  return os.str();
}
}  // namespace

StatusOr<EquiWidthDiscretizer> EquiWidthDiscretizer::Create(double lower, double upper,
                                                            size_t num_bins,
                                                            bool with_overflow_bin) {
  if (!(lower < upper)) {
    return Status::InvalidArgument("discretizer needs lower < upper");
  }
  if (num_bins == 0) {
    return Status::InvalidArgument("discretizer needs >= 1 bin");
  }
  return EquiWidthDiscretizer(lower, upper, num_bins, with_overflow_bin);
}

size_t EquiWidthDiscretizer::Bin(double value) const {
  if (value <= lower_) return 0;
  if (value > upper_) {
    return with_overflow_bin_ ? num_bins_ : num_bins_ - 1;
  }
  // (lo + (b)*w, lo + (b+1)*w] -> bin b; ceil handles the right-closed edges.
  const double offset = (value - lower_) / width_;
  size_t bin = static_cast<size_t>(std::ceil(offset)) - 1;
  if (bin >= num_bins_) bin = num_bins_ - 1;
  return bin;
}

std::vector<std::string> EquiWidthDiscretizer::BinLabels() const {
  std::vector<std::string> labels;
  labels.reserve(num_bins());
  for (size_t b = 0; b < num_bins_; ++b) {
    const double lo = lower_ + width_ * static_cast<double>(b);
    const double hi = lower_ + width_ * static_cast<double>(b + 1);
    labels.push_back("(" + EdgeToString(lo) + "-" + EdgeToString(hi) + "]");
  }
  if (with_overflow_bin_) labels.push_back("> " + EdgeToString(upper_));
  return labels;
}

Attribute EquiWidthDiscretizer::ToAttribute(const std::string& name) const {
  return Attribute{name, BinLabels()};
}

}  // namespace data
}  // namespace frapp
