// Categorical schemas (paper Section 2 data model).
//
// A database U has M categorical attributes; attribute j has finite domain
// S_U^j. The joint domain S_U = prod_j S_U^j is mapped to the index set
// I_U = {0, ..., |S_U| - 1} (the paper uses 1-based indices; we use 0-based).

#ifndef FRAPP_DATA_SCHEMA_H_
#define FRAPP_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "frapp/common/statusor.h"

namespace frapp {
namespace data {

/// One categorical attribute: a name and its ordered list of category labels.
struct Attribute {
  std::string name;
  std::vector<std::string> categories;

  size_t cardinality() const { return categories.size(); }
};

/// An ordered list of categorical attributes. Immutable after construction.
class CategoricalSchema {
 public:
  /// Validates and builds a schema: attribute names must be unique and
  /// non-empty; every attribute needs >= 1 category; category labels must be
  /// unique within an attribute.
  static StatusOr<CategoricalSchema> Create(std::vector<Attribute> attributes);

  size_t num_attributes() const { return attributes_.size(); }
  const Attribute& attribute(size_t j) const { return attributes_[j]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  /// Cardinality |S_U^j| of attribute j.
  size_t Cardinality(size_t j) const { return attributes_[j].cardinality(); }

  /// Joint domain size |S_U| = prod_j |S_U^j|.
  uint64_t DomainSize() const;

  /// Sum of cardinalities (the M_b of the paper's boolean mapping).
  size_t TotalCategories() const;

  /// Index of the attribute with this name; NotFound otherwise.
  StatusOr<size_t> AttributeIndex(const std::string& name) const;

  /// Index of `category` within attribute j; NotFound otherwise.
  StatusOr<size_t> CategoryIndex(size_t j, const std::string& category) const;

 private:
  explicit CategoricalSchema(std::vector<Attribute> attributes)
      : attributes_(std::move(attributes)) {}

  std::vector<Attribute> attributes_;
};

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_SCHEMA_H_
