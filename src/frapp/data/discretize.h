// Equi-width discretization of continuous attributes (paper Section 1.1:
// "continuous-valued attributes can be converted into categorical attributes
// by partitioning the domain of the attribute into fixed length intervals",
// and Section 7's dataset preparation).

#ifndef FRAPP_DATA_DISCRETIZE_H_
#define FRAPP_DATA_DISCRETIZE_H_

#include <string>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/schema.h"

namespace frapp {
namespace data {

/// Maps reals to equal-width bins over [lower, upper], with everything above
/// `upper` in a trailing overflow bin, matching the paper's
/// "(15-35], (35-55], (55-75], > 75" style.
class EquiWidthDiscretizer {
 public:
  /// `num_bins` interior bins over (lower, upper] plus one "> upper" bin when
  /// `with_overflow_bin` is set.
  static StatusOr<EquiWidthDiscretizer> Create(double lower, double upper,
                                               size_t num_bins,
                                               bool with_overflow_bin = true);

  /// Bin id for `value`. Values <= lower map to bin 0; values > upper map to
  /// the overflow bin (or the last interior bin when there is none).
  size_t Bin(double value) const;

  /// Total number of bins (interior + optional overflow).
  size_t num_bins() const { return num_bins_ + (with_overflow_bin_ ? 1 : 0); }

  /// Paper-style labels: "(lo-hi]" per interior bin and "> upper" overflow.
  std::vector<std::string> BinLabels() const;

  /// Builds a categorical Attribute with the given name and these bin labels.
  Attribute ToAttribute(const std::string& name) const;

 private:
  EquiWidthDiscretizer(double lower, double upper, size_t num_bins,
                       bool with_overflow_bin)
      : lower_(lower),
        upper_(upper),
        num_bins_(num_bins),
        with_overflow_bin_(with_overflow_bin),
        width_((upper - lower) / static_cast<double>(num_bins)) {}

  double lower_;
  double upper_;
  size_t num_bins_;
  bool with_overflow_bin_;
  double width_;
};

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_DISCRETIZE_H_
