// The paper's HEALTH dataset (Table 2): 100,000+ patient records from the US
// National Health Interview Survey, 3 continuous attributes partitioned into
// equi-width intervals (AGE, BDDAY12, DV12) and 4 nominal ones (PHONE, SEX,
// INCFAM20, HEALTH).
//
// As with CENSUS, the NHIS extract is not redistributable, so this module
// ships a calibrated chain-generator stand-in (see DESIGN.md). The schema
// matches Table 2 exactly; |S_U| = 5*5*5*3*2*2*5 = 7500.

#ifndef FRAPP_DATA_HEALTH_H_
#define FRAPP_DATA_HEALTH_H_

#include "frapp/common/statusor.h"
#include "frapp/data/synthetic.h"
#include "frapp/data/table.h"

namespace frapp {
namespace data {
namespace health {

/// Number of records the paper mines (over 100,000 patients).
inline constexpr size_t kDefaultNumRecords = 100000;

/// Default generation seed used by benches (fixed for reproducibility).
inline constexpr uint64_t kDefaultSeed = 19930817;

/// The Table 2 schema: AGE, BDDAY12, DV12, PHONE, SEX, INCFAM20, HEALTH.
CategoricalSchema Schema();

/// The calibrated chain generator.
StatusOr<ChainGenerator> Generator();

/// Convenience: generates the default HEALTH stand-in dataset.
StatusOr<CategoricalTable> MakeDataset(size_t n = kDefaultNumRecords,
                                       uint64_t seed = kDefaultSeed);

}  // namespace health
}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_HEALTH_H_
