#include "frapp/data/table.h"

namespace frapp {
namespace data {

StatusOr<CategoricalTable> CategoricalTable::Create(CategoricalSchema schema) {
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    if (schema.Cardinality(j) > 256) {
      return Status::InvalidArgument(
          "attribute '" + schema.attribute(j).name +
          "' has cardinality > 256; CategoricalTable stores uint8 ids");
    }
  }
  return CategoricalTable(std::move(schema));
}

Status CategoricalTable::AppendRow(const std::vector<uint8_t>& values) {
  if (values.size() != schema_.num_attributes()) {
    return Status::InvalidArgument("row arity mismatch");
  }
  for (size_t j = 0; j < values.size(); ++j) {
    if (values[j] >= schema_.Cardinality(j)) {
      return Status::OutOfRange("category id " + std::to_string(values[j]) +
                                " out of range for attribute '" +
                                schema_.attribute(j).name + "'");
    }
  }
  for (size_t j = 0; j < values.size(); ++j) columns_[j].push_back(values[j]);
  ++num_rows_;
  return Status::OK();
}

void CategoricalTable::AppendZeroRows(size_t n) {
  for (auto& col : columns_) col.resize(num_rows_ + n, 0);
  num_rows_ += n;
}

void CategoricalTable::Reserve(size_t n) {
  for (auto& col : columns_) col.reserve(n);
}

std::vector<uint8_t> CategoricalTable::Row(size_t row) const {
  FRAPP_CHECK_LT(row, num_rows_);
  std::vector<uint8_t> out(schema_.num_attributes());
  for (size_t j = 0; j < out.size(); ++j) out[j] = columns_[j][row];
  return out;
}

linalg::Vector CategoricalTable::JointHistogram(const DomainIndexer& indexer) const {
  linalg::Vector counts(static_cast<size_t>(indexer.domain_size()));
  const auto& attrs = indexer.attribute_indices();
  std::vector<size_t> values(attrs.size());
  for (size_t i = 0; i < num_rows_; ++i) {
    for (size_t k = 0; k < attrs.size(); ++k) {
      values[k] = columns_[attrs[k]][i];
    }
    counts[static_cast<size_t>(indexer.Encode(values))] += 1.0;
  }
  return counts;
}

linalg::Vector CategoricalTable::Marginal(size_t attribute) const {
  FRAPP_CHECK_LT(attribute, schema_.num_attributes());
  linalg::Vector dist(schema_.Cardinality(attribute));
  for (uint8_t v : columns_[attribute]) dist[v] += 1.0;
  if (num_rows_ > 0) dist.Scale(1.0 / static_cast<double>(num_rows_));
  return dist;
}

}  // namespace data
}  // namespace frapp
