#include "frapp/data/csv.h"

#include <fstream>

#include "frapp/common/string_util.h"

namespace frapp {
namespace data {

StatusOr<CategoricalTable> ReadCsv(const std::string& path,
                                   const CategoricalSchema& schema) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");

  std::string line;
  if (!std::getline(in, line)) {
    return Status::IOError("'" + path + "' is empty (missing header)");
  }
  const std::vector<std::string> header = Split(line, ',');
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "'" + path + "': header has " + std::to_string(header.size()) +
        " columns, schema expects " + std::to_string(schema.num_attributes()));
  }
  for (size_t j = 0; j < header.size(); ++j) {
    if (std::string(StripWhitespace(header[j])) != schema.attribute(j).name) {
      return Status::InvalidArgument("'" + path + "': column " + std::to_string(j) +
                                     " is '" + header[j] + "', schema expects '" +
                                     schema.attribute(j).name + "'");
    }
  }

  FRAPP_ASSIGN_OR_RETURN(CategoricalTable table, CategoricalTable::Create(schema));
  std::vector<uint8_t> row(schema.num_attributes());
  size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    const std::vector<std::string> cells = Split(line, ',');
    if (cells.size() != schema.num_attributes()) {
      return Status::InvalidArgument("'" + path + "' line " +
                                     std::to_string(line_number) + ": expected " +
                                     std::to_string(schema.num_attributes()) +
                                     " cells, found " + std::to_string(cells.size()));
    }
    for (size_t j = 0; j < cells.size(); ++j) {
      StatusOr<size_t> cat =
          schema.CategoryIndex(j, std::string(StripWhitespace(cells[j])));
      if (!cat.ok()) {
        return Status::InvalidArgument("'" + path + "' line " +
                                       std::to_string(line_number) + ": " +
                                       cat.status().message());
      }
      row[j] = static_cast<uint8_t>(*cat);
    }
    FRAPP_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return table;
}

Status WriteCsv(const CategoricalTable& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  const CategoricalSchema& schema = table.schema();
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    if (j > 0) out << ',';
    out << schema.attribute(j).name;
  }
  out << '\n';
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (size_t j = 0; j < schema.num_attributes(); ++j) {
      if (j > 0) out << ',';
      out << schema.attribute(j).categories[table.Value(i, j)];
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace data
}  // namespace frapp
