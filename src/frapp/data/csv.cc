#include "frapp/data/csv.h"

#include <limits>
#include <utility>

#include "frapp/common/string_util.h"

namespace frapp {
namespace data {

namespace {

/// Splits one physical line into cells. Cells are comma-separated; a cell
/// whose first non-space character is '"' is quoted: commas inside it are
/// literal and "" encodes one '"'. Embedded newlines are not supported (the
/// reader is line-oriented). Returns InvalidArgument on an unterminated
/// quote or on garbage after a closing quote.
StatusOr<std::vector<std::string>> SplitCsvLine(std::string_view line) {
  std::vector<std::string> cells;
  size_t i = 0;
  const size_t n = line.size();
  while (true) {
    // Leading spaces before an opening quote are tolerated (and dropped for
    // quoted cells; unquoted cells keep them — callers strip).
    size_t start = i;
    size_t peek = i;
    while (peek < n && (line[peek] == ' ' || line[peek] == '\t')) ++peek;
    std::string cell;
    if (peek < n && line[peek] == '"') {
      i = peek + 1;
      bool closed = false;
      while (i < n) {
        if (line[i] == '"') {
          if (i + 1 < n && line[i + 1] == '"') {  // escaped quote
            cell.push_back('"');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        cell.push_back(line[i]);
        ++i;
      }
      if (!closed) return Status::InvalidArgument("unterminated quoted cell");
      while (i < n && (line[i] == ' ' || line[i] == '\t')) ++i;
      if (i < n && line[i] != ',') {
        return Status::InvalidArgument("unexpected character after closing quote");
      }
    } else {
      while (i < n && line[i] != ',') ++i;
      cell.assign(line.substr(start, i - start));
    }
    cells.push_back(std::move(cell));
    if (i >= n) break;
    ++i;  // consume the comma
    if (i == n) {  // trailing comma: one final empty cell
      cells.emplace_back();
      break;
    }
  }
  return cells;
}

/// Reads the next line, stripping a trailing CR (CRLF input). Returns false
/// at end of file.
bool GetLine(std::ifstream& in, std::string& line) {
  if (!std::getline(in, line)) return false;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  return true;
}

/// Decodes a raw line block into `table` through `interners` — the ingest
/// hot loop shared by ReadShard (member interners, warm across shards) and
/// DecodeRawShard (fresh interners, any thread). `path` only labels errors;
/// line numbers come from the block (line i is physical line
/// raw.first_line + i, blank lines included).
Status ParseRawLines(const RawCsvShard& raw, const std::string& path,
                     const CategoricalSchema& schema,
                     std::vector<LabelInterner>& interners,
                     CategoricalTable& table) {
  const size_t num_attributes = schema.num_attributes();
  std::vector<uint8_t> row(num_attributes);
  size_t line_number = raw.first_line == 0 ? 0 : raw.first_line - 1;

  const auto line_error = [&](const std::string& what) {
    return Status::InvalidArgument("'" + path + "' line " +
                                   std::to_string(line_number) + ": " + what);
  };
  // Resolves one stripped cell through the column's interner; shared by the
  // quoted and unquoted paths.
  const auto intern_cell = [&](size_t j, std::string_view cell) -> Status {
    const int id = interners[j].Intern(StripWhitespace(cell));
    if (id < 0) {
      return line_error("attribute '" + schema.attribute(j).name +
                        "' has no category '" +
                        std::string(StripWhitespace(cell)) + "'");
    }
    row[j] = static_cast<uint8_t>(id);
    return Status::OK();
  };

  std::string_view remaining = raw.text;
  while (!remaining.empty()) {
    const size_t nl = remaining.find('\n');
    const std::string_view line =
        nl == std::string_view::npos ? remaining : remaining.substr(0, nl);
    remaining.remove_prefix(
        nl == std::string_view::npos ? remaining.size() : nl + 1);
    ++line_number;
    if (StripWhitespace(line).empty()) continue;
    if (line.find('"') == std::string_view::npos) {
      // Fast path (the overwhelming case): no quoting anywhere on the line,
      // so cells are the comma-separated string_views in place — no per-cell
      // allocation, labels resolved through the interners.
      std::string_view rest = line;
      size_t j = 0;
      while (true) {
        const size_t comma = rest.find(',');
        const std::string_view cell =
            comma == std::string_view::npos ? rest : rest.substr(0, comma);
        if (j >= num_attributes) {
          ++j;  // keep counting for the error message
        } else {
          FRAPP_RETURN_IF_ERROR(intern_cell(j, cell));
          ++j;
        }
        if (comma == std::string_view::npos) break;
        rest.remove_prefix(comma + 1);
      }
      if (j != num_attributes) {
        return line_error("expected " + std::to_string(num_attributes) +
                          " cells, found " + std::to_string(j));
      }
    } else {
      // Quoted path: full RFC-4180 unquoting, then the same interners.
      StatusOr<std::vector<std::string>> cells = SplitCsvLine(line);
      if (!cells.ok()) return line_error(std::string(cells.status().message()));
      if (cells->size() != num_attributes) {
        return line_error("expected " + std::to_string(num_attributes) +
                          " cells, found " + std::to_string(cells->size()));
      }
      for (size_t j = 0; j < cells->size(); ++j) {
        FRAPP_RETURN_IF_ERROR(intern_cell(j, (*cells)[j]));
      }
    }
    FRAPP_RETURN_IF_ERROR(table.AppendRow(row));
  }
  return Status::OK();
}

/// Quotes `label` if the CSV dialect requires it.
std::string EscapeCsvCell(const std::string& label) {
  if (label.find_first_of(",\"\r\n") == std::string::npos) return label;
  std::string out;
  out.reserve(label.size() + 2);
  out.push_back('"');
  for (char c : label) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

StatusOr<ShardedCsvReader> ShardedCsvReader::Open(
    const std::string& path, const CategoricalSchema& schema) {
  ShardedCsvReader reader(path, schema);
  reader.in_.open(path);
  if (!reader.in_) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  std::string line;
  if (!GetLine(reader.in_, line)) {
    return Status::IOError("'" + path + "' is empty (missing header)");
  }
  reader.line_number_ = 1;
  StatusOr<std::vector<std::string>> header = SplitCsvLine(line);
  if (!header.ok()) {
    return Status::InvalidArgument("'" + path + "' line 1: " +
                                   header.status().message());
  }
  if (header->size() != schema.num_attributes()) {
    return Status::InvalidArgument(
        "'" + path + "': header has " + std::to_string(header->size()) +
        " columns, schema expects " + std::to_string(schema.num_attributes()));
  }
  for (size_t j = 0; j < header->size(); ++j) {
    if (std::string(StripWhitespace((*header)[j])) != schema.attribute(j).name) {
      return Status::InvalidArgument("'" + path + "': column " + std::to_string(j) +
                                     " is '" + (*header)[j] + "', schema expects '" +
                                     schema.attribute(j).name + "'");
    }
  }
  reader.interners_ = MakeColumnInterners(reader.schema_);
  return reader;
}

StatusOr<RawCsvShard> ShardedCsvReader::ReadRawShard(size_t max_rows) {
  RawCsvShard raw;
  raw.row_begin = rows_read_;
  std::string line;
  while (raw.num_rows < max_rows && GetLine(in_, line)) {
    ++line_number_;
    if (raw.first_line == 0) raw.first_line = line_number_;
    raw.text.append(line);
    raw.text.push_back('\n');
    if (!StripWhitespace(line).empty()) ++raw.num_rows;
  }
  // getline() returning false means EOF *or* a stream error; only EOF may be
  // treated as end of data — a read error must not silently truncate the
  // stream into a shorter (but "successful") dataset.
  if (in_.bad()) {
    return Status::IOError("read failure on '" + path_ + "' after line " +
                           std::to_string(line_number_));
  }
  rows_read_ += raw.num_rows;
  return raw;
}

StatusOr<CategoricalTable> ShardedCsvReader::DecodeRawShard(
    const RawCsvShard& raw, const std::string& path,
    const CategoricalSchema& schema) {
  FRAPP_ASSIGN_OR_RETURN(CategoricalTable table,
                         CategoricalTable::Create(schema));
  // Fresh interners per block: the memo caches inside LabelInterner mutate
  // on every lookup, so sharing the reader's across decode threads would
  // race. Building them is O(categories) — noise next to an 8k-row decode —
  // and they still warm up within the block.
  std::vector<LabelInterner> interners = MakeColumnInterners(schema);
  FRAPP_RETURN_IF_ERROR(ParseRawLines(raw, path, schema, interners, table));
  return table;
}

StatusOr<CategoricalTable> ShardedCsvReader::ReadShard(size_t max_rows) {
  FRAPP_ASSIGN_OR_RETURN(RawCsvShard raw, ReadRawShard(max_rows));
  FRAPP_ASSIGN_OR_RETURN(CategoricalTable table,
                         CategoricalTable::Create(schema_));
  FRAPP_RETURN_IF_ERROR(ParseRawLines(raw, path_, schema_, interners_, table));
  return table;
}

StatusOr<CategoricalTable> ReadCsv(const std::string& path,
                                   const CategoricalSchema& schema) {
  FRAPP_ASSIGN_OR_RETURN(ShardedCsvReader reader,
                         ShardedCsvReader::Open(path, schema));
  // One shard covering the whole file: the monolithic read is the streaming
  // read with an unbounded chunk.
  return reader.ReadShard(std::numeric_limits<size_t>::max());
}

Status WriteCsv(const CategoricalTable& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  const CategoricalSchema& schema = table.schema();
  // Refuse to write labels our own reader cannot round-trip: newlines (the
  // reader is line-oriented, quoted cells cannot span lines), empty labels
  // (a blank line reads back as a skipped separator) and whitespace-padded
  // labels (the reader strips every cell, silently remapping " A" to "A").
  const auto unwritable = [](const std::string& label) -> const char* {
    if (label.find('\n') != std::string::npos) return "contains a newline";
    if (label.empty()) return "is empty";
    if (std::string(StripWhitespace(label)) != label) {
      return "has leading/trailing whitespace";
    }
    return nullptr;
  };
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    const Attribute& attribute = schema.attribute(j);
    if (const char* why = unwritable(attribute.name)) {
      return Status::InvalidArgument("attribute name '" + attribute.name +
                                     "' " + why);
    }
    for (const std::string& label : attribute.categories) {
      if (const char* why = unwritable(label)) {
        return Status::InvalidArgument("category label '" + label + "' " + why);
      }
    }
  }
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    if (j > 0) out << ',';
    out << EscapeCsvCell(schema.attribute(j).name);
  }
  out << '\n';
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (size_t j = 0; j < schema.num_attributes(); ++j) {
      if (j > 0) out << ',';
      out << EscapeCsvCell(schema.attribute(j).categories[table.Value(i, j)]);
    }
    out << '\n';
  }
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

}  // namespace data
}  // namespace frapp
