#include "frapp/data/sharded_boolean_vertical_index.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "frapp/common/check.h"
#include "frapp/common/cpuinfo.h"
#include "frapp/common/parallel.h"
#include "frapp/data/sharded_table.h"

namespace frapp {
namespace data {

namespace {

/// Bounds on patterns per (shard x block) grid cell: the floor spreads a
/// single candidate's 2^k lattice over several workers, the ceiling bounds
/// the stack scratch and the tail imbalance.
constexpr size_t kMinPatternsPerBlock = 16;
constexpr size_t kMaxPatternsPerBlock = 64;

/// Patterns per grid cell, sized from the detected cache geometry. Every
/// pattern in a cell folds subsets of the SAME k position bitmaps
/// (k x words x 8 bytes), so when that shared working set fits half the L2
/// a larger block reuses the cached bitmaps across more patterns and cuts
/// the per-cell dispatch + fetch_add traffic; once the bitmaps exceed the
/// L2 they are re-streamed either way, so the smaller block wins back load
/// balance. Block size only partitions work — cells ADD integers into the
/// shared totals — so it never affects results.
size_t PatternsPerBlock(size_t k, size_t words) {
  const size_t working_set = k * words * sizeof(uint64_t);
  return working_set <= common::GetCpuInfo().cache.l2_bytes / 2
             ? kMaxPatternsPerBlock
             : kMinPatternsPerBlock;
}

}  // namespace

ShardedBooleanVerticalIndex ShardedBooleanVerticalIndex::FromShards(
    std::vector<BooleanVerticalIndex> shards) {
  ShardedBooleanVerticalIndex out;
  out.shards_ = std::move(shards);
  for (const BooleanVerticalIndex& shard : out.shards_) {
    out.num_rows_ += shard.num_rows();
    if (shard.num_bits() != 0) {
      FRAPP_CHECK(out.num_bits_ == 0 || out.num_bits_ == shard.num_bits())
          << "shards disagree on num_bits";
      out.num_bits_ = shard.num_bits();
    }
  }
  return out;
}

void ShardedBooleanVerticalIndex::AppendShards(
    std::vector<BooleanVerticalIndex> shards) {
  for (BooleanVerticalIndex& shard : shards) {
    num_rows_ += shard.num_rows();
    if (shard.num_bits() != 0) {
      FRAPP_CHECK(num_bits_ == 0 || num_bits_ == shard.num_bits())
          << "shards disagree on num_bits";
      num_bits_ = shard.num_bits();
    }
    shards_.push_back(std::move(shard));
  }
}

ShardedBooleanVerticalIndex ShardedBooleanVerticalIndex::Build(
    const BooleanTable& table, size_t num_shards, size_t num_threads) {
  // Counting needs no chunk alignment (alignment 1 splits even small tables
  // into the requested number of shards), so "one shard per quantum" is
  // resolved to a count first.
  const size_t resolved_shards =
      num_shards != 0
          ? num_shards
          : common::NumChunks(table.num_rows(), kShardAlignmentRows);
  const std::vector<RowRange> plan =
      ShardedTable::Plan(table.num_rows(), resolved_shards, /*alignment=*/1);
  std::vector<BooleanVerticalIndex> shards(plan.size());
  common::ParallelForChunks(plan.size(), num_threads, [&](size_t s) {
    shards[s] = BooleanVerticalIndex(table, plan[s]);
  });
  return FromShards(std::move(shards));
}

std::vector<int64_t> ShardedBooleanVerticalIndex::SupersetCounts(
    const std::vector<size_t>& positions, size_t num_threads) const {
  const size_t k = positions.size();
  FRAPP_CHECK_LE(k, BooleanVerticalIndex::kMaxPatternLength);
  const size_t patterns = 1ull << k;
  std::vector<int64_t> totals(patterns, 0);
  if (shards_.empty()) return totals;

  // (shard x pattern-block) grid: cell (s, b) computes block b of shard s's
  // superset counts into a stack-sized scratch, then adds it into the shared
  // totals. Cells racing on a block only ever ADD integers, so the totals
  // are exact and order-independent — deterministic at any worker count —
  // while keeping peak memory O(2^k), not O(shards x 2^k) (a streamed table
  // has one shard per chunk quantum, so the latter would scale with rows).
  const size_t words = (shards_[0].num_rows() + 63) / 64;
  const size_t block_patterns = PatternsPerBlock(k, words);
  const size_t num_blocks = common::NumChunks(patterns, block_patterns);
  std::vector<std::atomic<int64_t>> shared(patterns);
  for (auto& slot : shared) slot.store(0, std::memory_order_relaxed);
  common::ParallelForChunks(
      shards_.size() * num_blocks, num_threads, [&](size_t cell) {
        const size_t s = cell / num_blocks;
        const size_t b = cell % num_blocks;
        const size_t begin = b * block_patterns;
        const size_t end = std::min(patterns, begin + block_patterns);
        int64_t scratch[kMaxPatternsPerBlock];
        shards_[s].SupersetCounts(positions, begin, end, scratch);
        for (size_t a = begin; a < end; ++a) {
          shared[a].fetch_add(scratch[a - begin], std::memory_order_relaxed);
        }
      });
  for (size_t a = 0; a < patterns; ++a) {
    totals[a] = shared[a].load(std::memory_order_relaxed);
  }
  return totals;
}

std::vector<int64_t> ShardedBooleanVerticalIndex::PatternCounts(
    const std::vector<size_t>& positions, size_t num_threads) const {
  // The Mobius transform is linear, so transforming the summed superset
  // counts equals summing the per-shard transforms.
  std::vector<int64_t> totals = SupersetCounts(positions, num_threads);
  BooleanVerticalIndex::MobiusExactCounts(totals);
  return totals;
}

std::vector<int64_t> ShardedBooleanVerticalIndex::HitHistogram(
    const std::vector<size_t>& positions, size_t num_threads) const {
  return BooleanVerticalIndex::HistogramFromPatternCounts(
      PatternCounts(positions, num_threads), positions.size());
}

}  // namespace data
}  // namespace frapp
