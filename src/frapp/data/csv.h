// CSV import/export for categorical tables. Enables running the FRAPP
// pipelines on real extracts (e.g. the UCI Adult file) when available; the
// benches default to the built-in synthetic generators.

#ifndef FRAPP_DATA_CSV_H_
#define FRAPP_DATA_CSV_H_

#include <string>

#include "frapp/common/statusor.h"
#include "frapp/data/table.h"

namespace frapp {
namespace data {

/// Reads a headered CSV whose columns match `schema` attribute names (same
/// order) and whose cells are category labels. Returns IOError / parse
/// errors with line numbers.
StatusOr<CategoricalTable> ReadCsv(const std::string& path,
                                   const CategoricalSchema& schema);

/// Writes the table as a headered CSV of category labels.
Status WriteCsv(const CategoricalTable& table, const std::string& path);

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_CSV_H_
