// CSV import/export for categorical tables. Enables running the FRAPP
// pipelines on real extracts (e.g. the UCI Adult file) when available; the
// benches default to the built-in synthetic generators.
//
// The dialect is RFC-4180-flavoured: comma-separated cells of category
// labels, optional "..."-quoting (with "" escaping a literal quote) for
// labels containing commas/quotes, tolerant of CRLF line endings and of a
// missing trailing newline. Parse errors carry 1-based line numbers.
//
// ShardedCsvReader is the streaming half: it parses the file in bounded
// row chunks so a table never needs to exist fully in memory — the
// pipeline::CsvTableSource ingest path is built on it, and ReadCsv is just
// "one chunk covering the whole file".
//
// Cell decoding is the ingest hot loop, so it avoids per-cell work: lines
// without quotes (the overwhelming case) are split into string_views in
// place — no per-cell string allocations — and labels resolve through
// per-column LabelInterners (open-addressing hash with a last-hit fast path
// for sorted/clustered columns) instead of the linear-scan
// CategoricalSchema::CategoryIndex.

#ifndef FRAPP_DATA_CSV_H_
#define FRAPP_DATA_CSV_H_

#include <fstream>
#include <string>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/label_interner.h"
#include "frapp/data/table.h"

namespace frapp {
namespace data {

/// One shard's worth of raw physical CSV lines, collected serially by
/// ShardedCsvReader::ReadRawShard and decodable on ANY thread by
/// DecodeRawShard — the unit of the parse-parallel ingest split. Blank
/// lines stay in `text` (the decoder skips them) so the i-th line of the
/// block is physical line `first_line + i`, keeping error line numbers
/// exact.
struct RawCsvShard {
  /// The block's physical lines joined by '\n' (CR already stripped).
  std::string text;
  /// 1-based file line number of text's first line.
  size_t first_line = 0;
  /// Global row index of the block's first data row.
  size_t row_begin = 0;
  /// Non-blank data rows in the block (rows the decode will yield).
  size_t num_rows = 0;
};

/// Incremental reader: header validated on Open, data rows parsed in
/// caller-sized chunks.
///
/// Not thread-safe: one reader per stream, advanced by a single producer
/// thread (which is exactly how pipeline::CsvTableSource — optionally behind
/// a pipeline::PrefetchingTableSource producer thread — drives it).
class ShardedCsvReader {
 public:
  /// Opens `path` and validates that the header matches `schema`'s attribute
  /// names in order.
  static StatusOr<ShardedCsvReader> Open(const std::string& path,
                                         const CategoricalSchema& schema);

  /// Parses up to `max_rows` further data rows into a fresh table over the
  /// schema (blank lines are skipped and do not count). Returns a table with
  /// zero rows once the file is exhausted; IO/parse errors (wrong cell
  /// count, unknown category label, unterminated quote) name the offending
  /// 1-based line.
  StatusOr<CategoricalTable> ReadShard(size_t max_rows);

  /// The serial half of the parse-parallel split: collects up to `max_rows`
  /// further non-blank data lines RAW — pure buffered IO, no cell decoding —
  /// so a single producer can feed several DecodeRawShard threads. Advances
  /// rows_read() by the collected row count; ReadShard(n) is exactly
  /// ReadRawShard(n) + DecodeRawShard of the block.
  StatusOr<RawCsvShard> ReadRawShard(size_t max_rows);

  /// The thread-safe half: decodes a collected block into a fresh table over
  /// `schema`. Builds its own interners, so any number of threads may decode
  /// distinct blocks concurrently. `path` only labels error messages.
  static StatusOr<CategoricalTable> DecodeRawShard(
      const RawCsvShard& raw, const std::string& path,
      const CategoricalSchema& schema);

  /// Data rows successfully parsed so far (the next shard's first global
  /// row index).
  size_t rows_read() const { return rows_read_; }

  const CategoricalSchema& schema() const { return schema_; }

  const std::string& path() const { return path_; }

 private:
  ShardedCsvReader(std::string path, CategoricalSchema schema)
      : path_(std::move(path)), schema_(std::move(schema)) {}

  std::string path_;
  CategoricalSchema schema_;
  // Per-column label resolvers, built once at Open. They borrow the category
  // vectors inside schema_; moving the reader moves schema_'s heap storage
  // without relocating those vectors, so the borrowed pointers stay valid.
  std::vector<LabelInterner> interners_;
  std::ifstream in_;
  size_t line_number_ = 0;
  size_t rows_read_ = 0;
};

/// Reads a headered CSV whose columns match `schema` attribute names (same
/// order) and whose cells are category labels. Returns IOError / parse
/// errors with line numbers.
StatusOr<CategoricalTable> ReadCsv(const std::string& path,
                                   const CategoricalSchema& schema);

/// Writes the table as a headered CSV of category labels, quoting labels
/// that contain commas, quotes or newlines.
Status WriteCsv(const CategoricalTable& table, const std::string& path);

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_CSV_H_
