// Sharded boolean bitmap index: the counting substrate that makes the
// boolean-table mechanisms (MASK, Cut-and-Paste) shard-streamable.
//
// Every statistic these mechanisms reconstruct from — exact-pattern counts
// and per-row hit histograms over a candidate's bit positions — is a sum of
// per-row indicators, so it is row-partitionable: the superset-intersection
// counts of a partitioned table are the integer sums of the per-shard ones,
// and because the superset Mobius transform is LINEAR, transforming the
// summed vector equals summing the transformed ones. Any shard partition
// therefore yields pattern counts bit-identical to the monolithic index
// ("On Addressing Efficiency Concerns in Privacy-Preserving Mining" makes
// the same observation for the estimation counts generally).
//
// Counting fans the (shard x pattern-block) grid out on the shared
// common::ThreadPool: each grid cell computes one block of one shard's
// superset counts into a disjoint slice, then the per-shard vectors are
// Mobius-transformed and summed in fixed shard order. Integer arithmetic
// end to end, so results are independent of both shard count and thread
// count.

#ifndef FRAPP_DATA_SHARDED_BOOLEAN_VERTICAL_INDEX_H_
#define FRAPP_DATA_SHARDED_BOOLEAN_VERTICAL_INDEX_H_

#include <cstdint>
#include <vector>

#include "frapp/data/boolean_vertical_index.h"
#include "frapp/data/boolean_view.h"

namespace frapp {
namespace data {

/// Immutable collection of per-shard BooleanVerticalIndexes over a row
/// partition of one boolean table. Counting answers are independent of the
/// shard count and of the thread count.
class ShardedBooleanVerticalIndex {
 public:
  /// Zero-shard (empty-stream) index.
  ShardedBooleanVerticalIndex() = default;

  /// Assembles from pre-built shard indexes (the pipeline path, where each
  /// shard was indexed right after perturbation and its rows dropped).
  /// Shard order must follow row order; totals are independent of it
  /// regardless. All shards must agree on num_bits.
  static ShardedBooleanVerticalIndex FromShards(
      std::vector<BooleanVerticalIndex> shards);

  /// Appends more row-partition shards (the dist fault-recovery path: a
  /// survivor ingests a dead worker's range on top of its own). All shards,
  /// old and new, must agree on num_bits; counting stays the integer sum
  /// over all of them, so appended coverage merges bit-identically.
  void AppendShards(std::vector<BooleanVerticalIndex> shards);

  /// Builds per-shard indexes over an even `num_shards`-way row split of
  /// `table` (counting needs no chunk alignment; 0 means one shard per
  /// seeded-chunk quantum). `num_threads` parallelizes the shard builds.
  static ShardedBooleanVerticalIndex Build(const BooleanTable& table,
                                           size_t num_shards,
                                           size_t num_threads = 1);

  size_t num_rows() const { return num_rows_; }
  size_t num_bits() const { return num_bits_; }
  size_t num_shards() const { return shards_.size(); }
  const BooleanVerticalIndex& shard(size_t s) const { return shards_[s]; }

  /// counts[A] = #rows (across all shards) whose bits on `positions` match
  /// pattern A exactly. The (shard x pattern-block) grid runs on up to
  /// `num_threads` workers (0 = hardware concurrency); bit-identical for
  /// every shard and thread count.
  std::vector<int64_t> PatternCounts(const std::vector<size_t>& positions,
                                     size_t num_threads = 1) const;

  /// RAW superset-intersection totals: counts[S] = #rows (across all shards)
  /// with ALL bits of subset S set, bits outside S free. This is the
  /// pre-Mobius half of PatternCounts — the vector a distributed worker
  /// ships, since the Mobius transform is linear and can run once on the
  /// merged totals (see frapp/dist).
  std::vector<int64_t> SupersetCounts(const std::vector<size_t>& positions,
                                      size_t num_threads = 1) const;

  /// histogram[j] = #rows (across all shards) with exactly j of `positions`
  /// set.
  std::vector<int64_t> HitHistogram(const std::vector<size_t>& positions,
                                    size_t num_threads = 1) const;

 private:
  size_t num_rows_ = 0;
  size_t num_bits_ = 0;
  std::vector<BooleanVerticalIndex> shards_;
};

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_SHARDED_BOOLEAN_VERTICAL_INDEX_H_
