// Dependency-chain synthetic data generator.
//
// The paper evaluates on two real datasets (UCI Adult "CENSUS", NHIS
// "HEALTH") that are not redistributable here. This generator produces
// categorical tables from a Bayesian-chain specification — each attribute is
// drawn from a marginal distribution or from a distribution conditioned on
// one earlier attribute — which reproduces the properties the experiments
// depend on: skewed marginals with a few rare (<supmin) categories and
// cross-attribute correlations that make long itemsets frequent.
// census.h / health.h provide calibrated specifications.

#ifndef FRAPP_DATA_SYNTHETIC_H_
#define FRAPP_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/table.h"
#include "frapp/random/alias_sampler.h"

namespace frapp {
namespace data {

/// Sampling specification for one attribute of the chain.
struct ChainAttributeSpec {
  /// Index of the conditioning attribute (must be < this attribute's index),
  /// or -1 for an unconditioned marginal.
  int parent = -1;

  /// Row r is the distribution of this attribute given parent category r;
  /// with parent == -1 there must be exactly one row. Each row must have one
  /// weight per category of this attribute; rows are normalized internally.
  std::vector<std::vector<double>> distributions;
};

/// Generates i.i.d. records from the chain model.
class ChainGenerator {
 public:
  /// Validates the specification against `schema` and precomputes alias
  /// samplers for every (attribute, parent-category) pair.
  static StatusOr<ChainGenerator> Create(CategoricalSchema schema,
                                         std::vector<ChainAttributeSpec> specs);

  /// Draws `n` records deterministically from `seed`.
  StatusOr<CategoricalTable> Generate(size_t n, uint64_t seed) const;

  /// Appends `n` further records drawn from `rng` to `out` (whose schema
  /// must match). Streaming form of Generate: pulling chunks with a
  /// persistent Pcg64(seed) concatenates bit-for-bit to Generate(total,
  /// seed) — the pipeline::SyntheticTableSource contract.
  Status AppendRows(CategoricalTable* out, size_t n, random::Pcg64& rng) const;

  const CategoricalSchema& schema() const { return schema_; }

  /// Exact marginal probability vector of attribute j under the chain model
  /// (forward propagation; used by calibration tests).
  linalg::Vector ExactMarginal(size_t attribute) const;

 private:
  ChainGenerator(CategoricalSchema schema, std::vector<ChainAttributeSpec> specs,
                 std::vector<std::vector<random::AliasSampler>> samplers)
      : schema_(std::move(schema)),
        specs_(std::move(specs)),
        samplers_(std::move(samplers)) {}

  CategoricalSchema schema_;
  std::vector<ChainAttributeSpec> specs_;
  // samplers_[j][r]: sampler of attribute j given parent category r
  // (index 0 when unconditioned).
  std::vector<std::vector<random::AliasSampler>> samplers_;
};

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_SYNTHETIC_H_
