#include "frapp/data/pattern_count_source.h"

#include "frapp/data/boolean_vertical_index.h"

namespace frapp {
namespace data {

StatusOr<std::vector<std::vector<int64_t>>>
PatternCountSource::PatternCountsBatch(
    const std::vector<std::vector<size_t>>& candidates) {
  std::vector<std::vector<int64_t>> counts;
  counts.reserve(candidates.size());
  for (const std::vector<size_t>& positions : candidates) {
    FRAPP_ASSIGN_OR_RETURN(std::vector<int64_t> one, PatternCounts(positions));
    counts.push_back(std::move(one));
  }
  return counts;
}

StatusOr<std::vector<int64_t>> PatternCountSource::HitHistogram(
    const std::vector<size_t>& positions) {
  FRAPP_ASSIGN_OR_RETURN(const std::vector<int64_t> patterns,
                         PatternCounts(positions));
  return BooleanVerticalIndex::HistogramFromPatternCounts(patterns,
                                                          positions.size());
}

}  // namespace data
}  // namespace frapp
