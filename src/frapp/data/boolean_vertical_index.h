// Vertical (bitmap) index over a BooleanTable.
//
// MASK and Cut-and-Paste reconstruction both start from row statistics of
// the perturbed boolean database: MASK needs the count of every exact
// 0/1 pattern on a candidate's k bit positions, C&P needs the histogram of
// per-row hit counts against a bit mask. Both reduce to subset-intersection
// cardinalities: N_S = #rows whose bits are all set on subset S. This index
// stores one row-bitset per boolean attribute so that every N_S is a
// word-wise AND + popcount, and derives the exact-pattern counts by a
// superset Mobius transform over the 2^k lattice — no row rescan per
// candidate.

#ifndef FRAPP_DATA_BOOLEAN_VERTICAL_INDEX_H_
#define FRAPP_DATA_BOOLEAN_VERTICAL_INDEX_H_

#include <cstdint>
#include <vector>

#include "frapp/data/boolean_view.h"

namespace frapp {
namespace data {

/// Immutable per-bit bitmap index over a BooleanTable snapshot.
class BooleanVerticalIndex {
 public:
  /// Transposes `table` (one pass over the rows).
  explicit BooleanVerticalIndex(const BooleanTable& table);

  size_t num_rows() const { return num_rows_; }

  /// Cutoff up to which pattern counting via the index beats the scalar row
  /// scan: 2^k * k words of AND work vs. 64 * words * k bit extractions.
  static constexpr size_t kMaxIndexedLength = 5;

  /// counts[A] (A in [0, 2^k)) = #rows whose bits on `positions` match
  /// pattern A exactly — bit b of A corresponds to positions[b]. Requires
  /// positions.size() <= kMaxIndexedLength and in-range positions.
  std::vector<int64_t> PatternCounts(const std::vector<size_t>& positions) const;

  /// histogram[j] = #rows with exactly j of `positions` set.
  std::vector<int64_t> HitHistogram(const std::vector<size_t>& positions) const;

 private:
  const uint64_t* Bitmap(size_t position) const {
    return bits_.data() + position * words_;
  }

  size_t num_rows_ = 0;
  size_t words_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_BOOLEAN_VERTICAL_INDEX_H_
