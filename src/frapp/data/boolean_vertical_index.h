// Vertical (bitmap) index over a BooleanTable.
//
// MASK and Cut-and-Paste reconstruction both start from row statistics of
// the perturbed boolean database: MASK needs the count of every exact
// 0/1 pattern on a candidate's k bit positions, C&P needs the histogram of
// per-row hit counts against a bit mask. Both reduce to subset-intersection
// cardinalities: N_S = #rows whose bits are all set on subset S. This index
// stores one row-bitset per boolean attribute so that every N_S is a
// word-wise AND + popcount, and derives the exact-pattern counts by a
// superset Mobius transform over the 2^k lattice — no row rescan per
// candidate.
//
// Because every statistic is a per-row count, the index shards trivially:
// the superset counts (and therefore the Mobius-transformed exact-pattern
// counts) of a row-partitioned table are the integer sums of the per-shard
// ones. ShardedBooleanVerticalIndex builds on that.

#ifndef FRAPP_DATA_BOOLEAN_VERTICAL_INDEX_H_
#define FRAPP_DATA_BOOLEAN_VERTICAL_INDEX_H_

#include <cstdint>
#include <vector>

#include "frapp/data/boolean_view.h"
#include "frapp/data/sharded_table.h"

namespace frapp {
namespace data {

/// Immutable per-bit bitmap index over a BooleanTable snapshot.
class BooleanVerticalIndex {
 public:
  /// Empty (zero-row) index: the placeholder slot value of the sharded
  /// builders, overwritten by per-shard construction results.
  BooleanVerticalIndex() = default;

  /// Transposes `table` (one pass over the rows).
  explicit BooleanVerticalIndex(const BooleanTable& table)
      : BooleanVerticalIndex(table, RowRange{0, table.num_rows()}) {}

  /// Transposes only rows [range.begin, range.end) of `table`, renumbered to
  /// local rows [0, range.size()): the per-shard constructor of the sharded
  /// counting path. The range must lie within the table.
  BooleanVerticalIndex(const BooleanTable& table, const RowRange& range);

  /// All bitmap planes, bit-major: bit position p occupies words
  /// [p * ceil(num_rows/64), (p+1) * ceil(num_rows/64)). The raw image a
  /// caller persists to reassemble the index later via FromRaw.
  const std::vector<uint64_t>& raw_bits() const { return bits_; }

  /// Reassembles an index from a persisted plane image: `bits` holds one
  /// `(num_rows + 63) / 64`-word plane per bit position, bit-major — exactly
  /// what raw_bits() of an index with the same shape returns. The result is
  /// bit-identical to the index the image was read from.
  static BooleanVerticalIndex FromRaw(size_t num_rows, size_t num_bits,
                                      std::vector<uint64_t> bits);

  size_t num_rows() const { return num_rows_; }
  size_t num_bits() const { return num_bits_; }

  /// Approximate heap footprint of the index — what a cache entry holding
  /// it charges against a byte budget.
  size_t MemoryBytes() const { return bits_.capacity() * sizeof(uint64_t); }

  /// Cutoff up to which pattern counting via the index beats a scalar row
  /// scan: 2^k * k words of AND work vs. 64 * words * k bit extractions.
  /// Above it the index is still exact, just no longer the fastest path —
  /// relevant only to callers that retain rows to scan (the sharded
  /// estimators do not).
  static constexpr size_t kMaxIndexedLength = 5;

  /// Hard cap on pattern-counting length (2^k counts are materialized).
  static constexpr size_t kMaxPatternLength = 20;

  /// counts[A] (A in [0, 2^k)) = #rows whose bits on `positions` match
  /// pattern A exactly — bit b of A corresponds to positions[b]. Requires
  /// positions.size() <= kMaxPatternLength and in-range positions.
  std::vector<int64_t> PatternCounts(const std::vector<size_t>& positions) const;

  /// histogram[j] = #rows with exactly j of `positions` set.
  std::vector<int64_t> HitHistogram(const std::vector<size_t>& positions) const;

  /// Superset-intersection counts for patterns [begin_pattern, end_pattern):
  /// out[S - begin_pattern] = #rows with ALL bits of subset S set (bits
  /// outside S free), S interpreted as a bitmask over `positions`; `out`
  /// needs end_pattern - begin_pattern slots. This is the block primitive
  /// the sharded index fans out over its (shard x pattern-block) grid;
  /// MobiusExactCounts turns a full superset vector into exact-pattern
  /// counts.
  void SupersetCounts(const std::vector<size_t>& positions, size_t begin_pattern,
                      size_t end_pattern, int64_t* out) const;

  /// In-place superset Mobius transform over the 2^k lattice: turns
  /// "at least S" counts into "exactly S" counts. Linear in the counts, so
  /// it commutes with summing per-shard superset vectors.
  static void MobiusExactCounts(std::vector<int64_t>& counts);

  /// Popcount fold of exact-pattern counts into a hit histogram:
  /// out[j] = sum of counts[A] with popcount(A) == j, for j in
  /// [0, num_positions]. The ONE derivation every HitHistogram — monolithic,
  /// sharded, or a remote count source's — goes through, so the local and
  /// distributed paths cannot drift.
  static std::vector<int64_t> HistogramFromPatternCounts(
      const std::vector<int64_t>& counts, size_t num_positions);

 private:
  const uint64_t* Bitmap(size_t position) const {
    return bits_.data() + position * words_;
  }

  size_t num_rows_ = 0;
  size_t num_bits_ = 0;
  size_t words_ = 0;
  std::vector<uint64_t> bits_;
};

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_BOOLEAN_VERTICAL_INDEX_H_
