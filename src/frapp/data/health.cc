#include "frapp/data/health.h"

namespace frapp {
namespace data {
namespace health {

CategoricalSchema Schema() {
  std::vector<Attribute> attrs = {
      {"AGE", {"[0-20)", "[20-40)", "[40-60)", "[60-80)", ">= 80"}},
      {"BDDAY12", {"[0-7)", "[7-15)", "[15-30)", "[30-60)", ">= 60"}},
      {"DV12", {"[0-7)", "[7-15)", "[15-30)", "[30-60)", ">= 60"}},
      {"PHONE",
       {"Yes, phone number given", "Yes, no phone number given", "No"}},
      {"SEX", {"Male", "Female"}},
      {"INCFAM20", {"Less than $20,000", "$20,000 or more"}},
      {"HEALTH", {"Excellent", "Very Good", "Good", "Fair", "Poor"}},
  };
  StatusOr<CategoricalSchema> schema = CategoricalSchema::Create(std::move(attrs));
  FRAPP_CHECK(schema.ok()) << schema.status().ToString();
  return *std::move(schema);
}

StatusOr<ChainGenerator> Generator() {
  // NHIS-plausible marginals with the clinically natural dependency chain
  // AGE -> bed days -> doctor visits, AGE -> phone / income / health status.
  // Calibrated so ~23 of the 27 categories are frequent at supmin = 2%
  // (Table 3) and positively correlated healthy categories keep length-7
  // itemsets above threshold.
  std::vector<ChainAttributeSpec> specs(7);

  // AGE: full population survey.
  specs[0].parent = -1;
  specs[0].distributions = {{0.28, 0.30, 0.25, 0.14, 0.03}};

  // BDDAY12 (bed days, last 12 months) | AGE: most people report none/few.
  specs[1].parent = 0;
  specs[1].distributions = {
      {0.90, 0.060, 0.025, 0.010, 0.005},  // [0-20)
      {0.87, 0.080, 0.030, 0.013, 0.007},  // [20-40)
      {0.82, 0.100, 0.050, 0.020, 0.010},  // [40-60)
      {0.72, 0.140, 0.080, 0.040, 0.020},  // [60-80)
      {0.60, 0.180, 0.120, 0.060, 0.040},  // >= 80
  };

  // DV12 (doctor visits) | BDDAY12: bed days predict visits strongly.
  specs[2].parent = 1;
  specs[2].distributions = {
      {0.82, 0.120, 0.040, 0.015, 0.005},  // [0-7) bed days
      {0.45, 0.300, 0.170, 0.060, 0.020},  // [7-15)
      {0.30, 0.300, 0.250, 0.100, 0.050},  // [15-30)
      {0.20, 0.250, 0.300, 0.150, 0.100},  // [30-60)
      {0.15, 0.200, 0.300, 0.200, 0.150},  // >= 60
  };

  // PHONE | AGE: telephone coverage rises with age of household head;
  // "yes but number withheld" is rare throughout.
  specs[3].parent = 0;
  specs[3].distributions = {
      {0.900, 0.020, 0.080},  // [0-20)
      {0.920, 0.020, 0.060},  // [20-40)
      {0.930, 0.018, 0.052},  // [40-60)
      {0.950, 0.013, 0.037},  // [60-80)
      {0.960, 0.010, 0.030},  // >= 80
  };

  // SEX: slight female majority in the survey population.
  specs[4].parent = -1;
  specs[4].distributions = {{0.48, 0.52}};

  // INCFAM20 | AGE: low income concentrates at the young and the oldest.
  specs[5].parent = 0;
  specs[5].distributions = {
      {0.40, 0.60},  // [0-20)
      {0.30, 0.70},  // [20-40)
      {0.25, 0.75},  // [40-60)
      {0.45, 0.55},  // [60-80)
      {0.55, 0.45},  // >= 80
  };

  // HEALTH (self-reported status) | AGE: degrades with age.
  specs[6].parent = 0;
  specs[6].distributions = {
      {0.45, 0.30, 0.18, 0.05, 0.02},  // [0-20)
      {0.38, 0.30, 0.22, 0.07, 0.03},  // [20-40)
      {0.26, 0.28, 0.28, 0.12, 0.06},  // [40-60)
      {0.15, 0.22, 0.33, 0.20, 0.10},  // [60-80)
      {0.08, 0.15, 0.32, 0.28, 0.17},  // >= 80
  };

  return ChainGenerator::Create(Schema(), std::move(specs));
}

StatusOr<CategoricalTable> MakeDataset(size_t n, uint64_t seed) {
  FRAPP_ASSIGN_OR_RETURN(ChainGenerator generator, Generator());
  return generator.Generate(n, seed);
}

}  // namespace health
}  // namespace data
}  // namespace frapp
