// Shard-first view of a CategoricalTable: the unit of work of the parallel
// perturb -> index -> count pipeline.
//
// FRAPP's privacy guarantees are per-record, so the whole pipeline is
// embarrassingly shardable: any contiguous row partition can be perturbed,
// vertically indexed, and support-counted independently, with integer counts
// summed at the end. The ONE constraint is determinism: seeded perturbation
// derives its randomness from fixed-size row chunks (see
// core/seeded_chunking.h), so shard boundaries must fall on chunk boundaries
// for the sharded output to be bit-identical to the monolithic one. This
// header owns that quantum (`kShardAlignmentRows`); the perturbers' chunking
// contract aliases it so the two can never drift apart.

#ifndef FRAPP_DATA_SHARDED_TABLE_H_
#define FRAPP_DATA_SHARDED_TABLE_H_

#include <cstddef>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/table.h"

namespace frapp {
namespace data {

/// Row quantum of the seeded determinism contract: seeded perturbation draws
/// one independent RNG stream per `kShardAlignmentRows`-row chunk, so any
/// shard starting on a multiple of this many rows perturbs bit-identically
/// to the same rows inside a monolithic pass.
inline constexpr size_t kShardAlignmentRows = 8192;

/// A contiguous half-open row range [begin, end) of a table.
struct RowRange {
  size_t begin = 0;
  size_t end = 0;

  size_t size() const { return end - begin; }
  bool operator==(const RowRange& other) const {
    return begin == other.begin && end == other.end;
  }
};

/// One chunk-aligned window of a logical row stream: rows
/// [local.begin, local.end) of *rows hold the stream's global rows
/// [global_begin, global_begin + local.size()).
///
/// This is the unit the streaming pipeline hands to a mechanism's shard
/// perturbation. For an in-memory table the view aliases the parent table
/// (local IS the global range); for a streaming source (CSV, generator) the
/// view covers a small owned buffer whose global position is carried by
/// `global_begin`. Seeded perturbation derives its RNG streams from GLOBAL
/// chunk indices, so the two cases perturb bit-identically.
///
/// Contract: global_begin must be a multiple of kShardAlignmentRows, and
/// local.size() must be a multiple of it too UNLESS this is the stream's
/// final shard (streams may end mid-chunk).
struct ShardView {
  const CategoricalTable* rows = nullptr;
  RowRange local;
  size_t global_begin = 0;

  size_t size() const { return local.size(); }
};

/// Fixed partition of a CategoricalTable into contiguous row shards.
///
/// The partition is a pure function of (num_rows, num_shards, alignment) —
/// never of the thread count — which is what makes every sharded pass
/// reproducible. The table is NOT copied; shards are materialized on demand
/// (and can be dropped as soon as they are indexed, bounding peak memory to
/// O(shard) instead of O(table)).
class ShardedTable {
 public:
  /// Shard boundaries for `num_rows` rows split `num_shards` ways, each
  /// boundary a multiple of `alignment` (the last shard absorbs the tail).
  /// Shards are as even as possible in units of alignment quanta; the shard
  /// count is clamped to the number of quanta, so every shard is non-empty.
  /// `num_shards` 0 means one shard per quantum. Empty input -> no shards.
  static std::vector<RowRange> Plan(size_t num_rows, size_t num_shards,
                                    size_t alignment = kShardAlignmentRows);

  /// Partitions `table` (which must outlive the ShardedTable) into
  /// `num_shards` chunk-aligned shards.
  static ShardedTable Create(const CategoricalTable& table, size_t num_shards,
                             size_t alignment = kShardAlignmentRows);

  const CategoricalTable& table() const { return *table_; }
  size_t num_shards() const { return shards_.size(); }
  const RowRange& Range(size_t shard) const { return shards_[shard]; }
  const std::vector<RowRange>& shards() const { return shards_; }

  /// Largest shard, in rows (0 when the table is empty). This is the
  /// pipeline's per-shard memory bound.
  size_t MaxShardRows() const;

  /// Copies shard `shard`'s rows into a standalone table (column-wise
  /// memcpy; the paper's perturb-then-transmit client batch).
  StatusOr<CategoricalTable> MaterializeShard(size_t shard) const;

 private:
  ShardedTable(const CategoricalTable& table, std::vector<RowRange> shards)
      : table_(&table), shards_(std::move(shards)) {}

  const CategoricalTable* table_;
  std::vector<RowRange> shards_;
};

/// Copies rows [range.begin, range.end) of `table` into a fresh table over
/// the same schema (the materialization primitive behind MaterializeShard;
/// the streaming pipeline itself perturbs straight from the parent table
/// and never copies shards).
StatusOr<CategoricalTable> CopyRowRange(const CategoricalTable& table,
                                        const RowRange& range);

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_SHARDED_TABLE_H_
