// Binary shard format: pre-tokenized categorical rows on disk.
//
// CSV ingest pays a text-parsing tax on every run — splitting lines,
// unquoting cells, resolving labels — even when the same extract is mined
// repeatedly. This format pays it ONCE: a converted file stores category ids
// directly (packed little-endian u16 cells, row-major), so reading a shard
// is one bulk read plus a column scatter, no string work at all.
//
// Layout (all integers little-endian):
//
//   offset  size  field
//   0       8     magic "FRAPPBIN"
//   8       4     u32 format version (currently 1)
//   12      8     u64 schema fingerprint (SchemaFingerprint below)
//   20      4     u32 column count
//   24      8     u64 row count
//   32      ...   rows * columns u16 cells, row-major
//
// The schema fingerprint hashes attribute names, cardinalities and every
// category label IN ORDER, so a file written under one schema refuses to
// open under a different one (renamed column, reordered labels, ...) instead
// of silently mis-labelling cells. Cells are u16 — wider than the in-memory
// u8 table — so the file format will survive a future cardinality bump
// without a version break; values are still validated against the schema's
// cardinalities on read.
//
// BinaryShardReader mirrors ShardedCsvReader (Open validates the header,
// ReadShard pulls bounded row chunks, errors name the offending row), which
// is what lets pipeline::BinaryTableSource slot into the same streaming
// contract as the CSV path. Unlike CSV, the row count is in the header, so
// the reader exposes total_rows() up front.
//
// Not thread-safe: one reader per stream, advanced by a single producer
// thread (the TableSource contract).

#ifndef FRAPP_DATA_SHARD_IO_H_
#define FRAPP_DATA_SHARD_IO_H_

#include <cstdint>
#include <fstream>
#include <string>

#include "frapp/common/statusor.h"
#include "frapp/data/table.h"

namespace frapp {
namespace data {

/// Order-sensitive FNV-1a digest of a schema's attribute names,
/// cardinalities and category labels. Two schemas agree on every cell id
/// mapping iff their fingerprints match (modulo hash collisions).
uint64_t SchemaFingerprint(const CategoricalSchema& schema);

/// Writes `table` in the binary shard format. Overwrites `path`.
Status WriteBinaryTable(const CategoricalTable& table, const std::string& path);

/// Appends `rows` to an existing binary shard file in place: validates the
/// header (magic, version, schema fingerprint against `rows`' schema),
/// writes the new cells after the existing ones, then patches the header's
/// row count. This is the producer side of incremental mining — growing a
/// table is O(new rows), and a store-backed mine then pays only the delta.
Status AppendBinaryTable(const CategoricalTable& rows, const std::string& path);

/// Incremental reader over one binary file: header validated on Open, rows
/// materialized in caller-sized chunks (the streaming half the CSV reader
/// also implements).
class BinaryShardReader {
 public:
  /// Opens `path`, validating magic, version, column count and the schema
  /// fingerprint against `schema`.
  static StatusOr<BinaryShardReader> Open(const std::string& path,
                                          const CategoricalSchema& schema);

  /// Materializes up to `max_rows` further rows into a fresh table over the
  /// schema. Returns a zero-row table once the file is exhausted. A file
  /// shorter than its header's row count, or a cell id at or above its
  /// column's cardinality, is a data-corruption error naming the 0-based
  /// row.
  StatusOr<CategoricalTable> ReadShard(size_t max_rows);

  /// Repositions the stream so the next ReadShard starts at global row
  /// `row` (<= total_rows) — one seek, no cells touched. This is what lets a
  /// distributed worker assigned rows [begin, end) of a shared file skip the
  /// preceding workers' rows at zero parse cost.
  Status SkipToRow(size_t row);

  /// Rows materialized so far (the next shard's first global row index).
  size_t rows_read() const { return rows_read_; }

  /// Total rows in the file (from the header — known up front, unlike CSV).
  size_t total_rows() const { return total_rows_; }

  const CategoricalSchema& schema() const { return schema_; }

 private:
  BinaryShardReader(std::string path, CategoricalSchema schema)
      : path_(std::move(path)), schema_(std::move(schema)) {}

  std::string path_;
  CategoricalSchema schema_;
  std::ifstream in_;
  size_t total_rows_ = 0;
  size_t rows_read_ = 0;
};

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_SHARD_IO_H_
