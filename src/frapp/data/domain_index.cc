#include "frapp/data/domain_index.h"

namespace frapp {
namespace data {

DomainIndexer::DomainIndexer(std::vector<size_t> attribute_indices,
                             std::vector<size_t> cardinalities)
    : attribute_indices_(std::move(attribute_indices)),
      cardinalities_(std::move(cardinalities)) {
  const size_t k = cardinalities_.size();
  strides_.assign(k, 1);
  for (size_t i = k; i-- > 1;) {
    strides_[i - 1] = strides_[i] * cardinalities_[i];
  }
  domain_size_ = (k == 0) ? 1 : strides_[0] * cardinalities_[0];
}

DomainIndexer DomainIndexer::OverAllAttributes(const CategoricalSchema& schema) {
  std::vector<size_t> indices(schema.num_attributes());
  std::vector<size_t> cards(schema.num_attributes());
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    indices[j] = j;
    cards[j] = schema.Cardinality(j);
  }
  return DomainIndexer(std::move(indices), std::move(cards));
}

StatusOr<DomainIndexer> DomainIndexer::OverSubset(
    const CategoricalSchema& schema, std::vector<size_t> attribute_indices) {
  if (attribute_indices.empty()) {
    return Status::InvalidArgument("subset indexer needs >= 1 attribute");
  }
  std::vector<size_t> cards;
  cards.reserve(attribute_indices.size());
  size_t prev = 0;
  bool first = true;
  for (size_t j : attribute_indices) {
    if (j >= schema.num_attributes()) {
      return Status::OutOfRange("attribute index out of range in subset");
    }
    if (!first && j <= prev) {
      return Status::InvalidArgument("subset attribute indices must be ascending");
    }
    prev = j;
    first = false;
    cards.push_back(schema.Cardinality(j));
  }
  return DomainIndexer(std::move(attribute_indices), std::move(cards));
}

uint64_t DomainIndexer::Encode(const std::vector<size_t>& values) const {
  FRAPP_CHECK_EQ(values.size(), cardinalities_.size());
  uint64_t index = 0;
  for (size_t k = 0; k < values.size(); ++k) {
    FRAPP_CHECK_LT(values[k], cardinalities_[k]);
    index += values[k] * strides_[k];
  }
  return index;
}

uint64_t DomainIndexer::EncodeFromFullRecord(
    const std::vector<uint8_t>& full_record) const {
  uint64_t index = 0;
  for (size_t k = 0; k < attribute_indices_.size(); ++k) {
    index += static_cast<uint64_t>(full_record[attribute_indices_[k]]) * strides_[k];
  }
  return index;
}

std::vector<size_t> DomainIndexer::Decode(uint64_t index) const {
  FRAPP_CHECK_LT(index, domain_size_);
  std::vector<size_t> values(cardinalities_.size());
  for (size_t k = 0; k < cardinalities_.size(); ++k) {
    values[k] = static_cast<size_t>(index / strides_[k]);
    index %= strides_[k];
  }
  return values;
}

}  // namespace data
}  // namespace frapp
