#include "frapp/data/boolean_view.h"

namespace frapp {
namespace data {

BooleanLayout::BooleanLayout(const CategoricalSchema& schema) {
  offsets_.resize(schema.num_attributes());
  size_t offset = 0;
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    offsets_[j] = offset;
    offset += schema.Cardinality(j);
  }
  num_bits_ = offset;
}

StatusOr<BooleanTable> BooleanTable::FromCategorical(const CategoricalTable& table) {
  return FromCategoricalRange(table, RowRange{0, table.num_rows()});
}

StatusOr<BooleanTable> BooleanTable::FromCategoricalRange(
    const CategoricalTable& table, const RowRange& range) {
  if (range.begin > range.end || range.end > table.num_rows()) {
    return Status::OutOfRange("row range exceeds table");
  }
  BooleanLayout layout(table.schema());
  if (layout.num_bits() > 64) {
    return Status::InvalidArgument(
        "boolean view limited to 64 bits; schema has " +
        std::to_string(layout.num_bits()));
  }
  BooleanTable out(layout.num_bits());
  out.rows_.reserve(range.size());
  for (size_t i = range.begin; i < range.end; ++i) {
    uint64_t bits = 0;
    for (size_t j = 0; j < table.num_attributes(); ++j) {
      bits |= 1ull << layout.BitPosition(j, table.Value(i, j));
    }
    out.rows_.push_back(bits);
  }
  return out;
}

StatusOr<BooleanTable> BooleanTable::CreateEmpty(size_t num_bits) {
  if (num_bits == 0 || num_bits > 64) {
    return Status::InvalidArgument("boolean table needs 1..64 bits");
  }
  return BooleanTable(num_bits);
}

}  // namespace data
}  // namespace frapp
