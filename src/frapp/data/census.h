// The paper's CENSUS dataset (Table 1): ~50,000 adult-census records over 6
// attributes — 3 continuous ones partitioned into equi-width intervals (age,
// fnlwgt, hours-per-week) and 3 nominal ones (race, sex, native-country).
//
// The UCI Adult extract itself is not redistributable here, so this module
// ships a chain-generator specification calibrated to the published Adult
// marginals (see DESIGN.md, "Substitutions"). The schema matches Table 1
// exactly; the joint domain size is |S_U| = 4*5*5*5*2*2 = 2000.

#ifndef FRAPP_DATA_CENSUS_H_
#define FRAPP_DATA_CENSUS_H_

#include "frapp/common/statusor.h"
#include "frapp/data/synthetic.h"
#include "frapp/data/table.h"

namespace frapp {
namespace data {
namespace census {

/// Number of records the paper mines (~50,000 adult American citizens).
inline constexpr size_t kDefaultNumRecords = 50000;

/// Default generation seed used by benches (fixed for reproducibility).
inline constexpr uint64_t kDefaultSeed = 20050405;

/// The Table 1 schema: age, fnlwgt, hours-per-week, race, sex,
/// native-country, with the paper's category labels.
CategoricalSchema Schema();

/// The calibrated chain generator.
StatusOr<ChainGenerator> Generator();

/// Convenience: generates the default CENSUS stand-in dataset.
StatusOr<CategoricalTable> MakeDataset(size_t n = kDefaultNumRecords,
                                       uint64_t seed = kDefaultSeed);

}  // namespace census
}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_CENSUS_H_
