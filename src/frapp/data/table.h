// Columnar categorical table: the database U = {U_i} of the paper.

#ifndef FRAPP_DATA_TABLE_H_
#define FRAPP_DATA_TABLE_H_

#include <cstdint>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/domain_index.h"
#include "frapp/data/schema.h"
#include "frapp/linalg/vector.h"

namespace frapp {
namespace data {

/// N records over a CategoricalSchema, stored column-major (one contiguous
/// byte array per attribute) for cache-friendly support counting. Category
/// ids must fit a uint8 (cardinality <= 256), ample for FRAPP workloads.
class CategoricalTable {
 public:
  /// Empty table over `schema`. Fails when any cardinality exceeds 256.
  static StatusOr<CategoricalTable> Create(CategoricalSchema schema);

  const CategoricalSchema& schema() const { return schema_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_attributes() const { return schema_.num_attributes(); }

  /// Appends one record; `values[j]` is the category id of attribute j.
  Status AppendRow(const std::vector<uint8_t>& values);

  /// Appends n rows of category 0 (always valid: cardinality >= 1) for bulk
  /// writers that fill values in place via MutableColumnData.
  void AppendZeroRows(size_t n);

  /// Raw mutable column for bulk writers. Values stored through this pointer
  /// are UNCHECKED; callers must keep them < Cardinality(attribute).
  uint8_t* MutableColumnData(size_t attribute) {
    return columns_[attribute].data();
  }

  /// Reserves capacity for n rows.
  void Reserve(size_t n);

  /// Category id of attribute j in row i (unchecked on the hot path).
  uint8_t Value(size_t row, size_t attribute) const {
    return columns_[attribute][row];
  }

  void SetValue(size_t row, size_t attribute, uint8_t value) {
    FRAPP_CHECK_LT(row, num_rows_);
    FRAPP_CHECK_LT(value, schema_.Cardinality(attribute));
    columns_[attribute][row] = value;
  }

  /// Contiguous column for attribute j.
  const std::vector<uint8_t>& Column(size_t attribute) const {
    return columns_[attribute];
  }

  /// Copies row i into a per-attribute vector.
  std::vector<uint8_t> Row(size_t row) const;

  /// Counts X_u over the joint (sub-)domain described by `indexer`
  /// (paper's X vector restricted to the subset Cs): out[u] = #records whose
  /// covered attributes encode to u. The indexer's domain size must be modest
  /// enough to materialize.
  linalg::Vector JointHistogram(const DomainIndexer& indexer) const;

  /// Marginal distribution (fractions summing to 1) of one attribute.
  linalg::Vector Marginal(size_t attribute) const;

 private:
  CategoricalTable(CategoricalSchema schema)
      : schema_(std::move(schema)), columns_(schema_.num_attributes()) {}

  CategoricalSchema schema_;
  std::vector<std::vector<uint8_t>> columns_;
  size_t num_rows_ = 0;
};

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_TABLE_H_
