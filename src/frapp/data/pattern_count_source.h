// Abstract source of boolean pattern-count vectors: the counting seam of the
// boolean-table mechanisms (MASK, Cut-and-Paste), mirror of
// mining/count_source.h for one-hot rows.
//
// Both boolean reconstructions start from the exact-pattern counts of a
// candidate's k bit positions (2^k integers). Those are derived from
// superset-intersection counts by the superset Mobius transform, which is
// LINEAR — so the transform commutes with summing per-partition superset
// vectors, and a distributed implementation can ship RAW superset counts and
// transform once after the merge. Either way the integers reaching the
// estimator are identical, which is what keeps reconstruction bit-identical
// across local and remote counting.

#ifndef FRAPP_DATA_PATTERN_COUNT_SOURCE_H_
#define FRAPP_DATA_PATTERN_COUNT_SOURCE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/sharded_boolean_vertical_index.h"

namespace frapp {
namespace data {

/// Total exact-pattern counts over one (conceptually single) perturbed
/// boolean database, however its rows are physically placed.
class PatternCountSource {
 public:
  virtual ~PatternCountSource() = default;

  /// Total rows behind the counts.
  virtual size_t num_rows() const = 0;

  /// One-hot width: bit positions at or above this cannot occur in any row.
  virtual size_t num_bits() const = 0;

  /// counts[A] (A in [0, 2^k)) = #rows whose bits on `positions` match
  /// pattern A exactly, summed over every physical partition. Requires
  /// positions.size() <= BooleanVerticalIndex::kMaxPatternLength.
  virtual StatusOr<std::vector<int64_t>> PatternCounts(
      const std::vector<size_t>& positions) = 0;

  /// Whole-pass batch: out[c] = PatternCounts(candidates[c]). The default
  /// loops — right for local indexes, where a call is a function call. A
  /// remote source overrides it to ship a candidate BLOCK per round trip
  /// instead of paying one worker round trip per candidate.
  virtual StatusOr<std::vector<std::vector<int64_t>>> PatternCountsBatch(
      const std::vector<std::vector<size_t>>& candidates);

  /// histogram[j] = #rows with exactly j of `positions` set. Derived from
  /// PatternCounts by a popcount fold, exactly as the sharded index derives
  /// it — one code path for local and remote sources.
  StatusOr<std::vector<int64_t>> HitHistogram(
      const std::vector<size_t>& positions);
};

/// In-process implementation over a sharded boolean bitmap index (the
/// single-machine pipeline path).
class LocalPatternCountSource : public PatternCountSource {
 public:
  /// Owns the index; `num_threads` parallelizes each counting pass (0 =
  /// hardware concurrency). Never affects results.
  LocalPatternCountSource(ShardedBooleanVerticalIndex index,
                          size_t num_threads = 1)
      : index_(std::move(index)), num_threads_(num_threads) {}

  size_t num_rows() const override { return index_.num_rows(); }
  size_t num_bits() const override { return index_.num_bits(); }

  StatusOr<std::vector<int64_t>> PatternCounts(
      const std::vector<size_t>& positions) override {
    if (positions.size() > BooleanVerticalIndex::kMaxPatternLength) {
      return Status::InvalidArgument("pattern length above the 2^k cap");
    }
    return index_.PatternCounts(positions, num_threads_);
  }

  const ShardedBooleanVerticalIndex& index() const { return index_; }

 private:
  ShardedBooleanVerticalIndex index_;
  size_t num_threads_;
};

/// RAW superset-intersection count vectors — the PRE-Mobius, purely
/// additive half of PatternCounts. counts[S] (S a bit-subset of the
/// candidate's positions) = #rows with every bit of S set, bits outside S
/// free. Unlike exact-pattern counts these vectors sum directly across any
/// row partition, which makes them the currency of everything that merges
/// or caches counts: frapp/dist workers ship them, and the frapp/store
/// count store persists them (the Mobius transform runs per-query on the
/// merged totals, preserving bit-identity).
class SupersetCountSource {
 public:
  virtual ~SupersetCountSource() = default;

  /// Total rows behind the counts.
  virtual size_t num_rows() const = 0;

  /// One-hot width: bit positions at or above this cannot occur in any row.
  virtual size_t num_bits() const = 0;

  /// out[c] = the 2^k superset-count vector of candidates[c]. Requires
  /// every candidate size <= BooleanVerticalIndex::kMaxPatternLength.
  virtual StatusOr<std::vector<std::vector<int64_t>>> SupersetCountsBatch(
      const std::vector<std::vector<size_t>>& candidates) = 0;
};

/// In-process implementation over a sharded boolean bitmap index.
class LocalSupersetCountSource : public SupersetCountSource {
 public:
  LocalSupersetCountSource(ShardedBooleanVerticalIndex index,
                           size_t num_threads = 1)
      : index_(std::move(index)), num_threads_(num_threads) {}

  size_t num_rows() const override { return index_.num_rows(); }
  size_t num_bits() const override { return index_.num_bits(); }

  StatusOr<std::vector<std::vector<int64_t>>> SupersetCountsBatch(
      const std::vector<std::vector<size_t>>& candidates) override {
    std::vector<std::vector<int64_t>> out;
    out.reserve(candidates.size());
    for (const std::vector<size_t>& positions : candidates) {
      if (positions.size() > BooleanVerticalIndex::kMaxPatternLength) {
        return Status::InvalidArgument("pattern length above the 2^k cap");
      }
      out.push_back(index_.SupersetCounts(positions, num_threads_));
    }
    return out;
  }

 private:
  ShardedBooleanVerticalIndex index_;
  size_t num_threads_;
};

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_PATTERN_COUNT_SOURCE_H_
