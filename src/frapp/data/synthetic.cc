#include "frapp/data/synthetic.h"

#include "frapp/random/rng.h"

namespace frapp {
namespace data {

StatusOr<ChainGenerator> ChainGenerator::Create(CategoricalSchema schema,
                                                std::vector<ChainAttributeSpec> specs) {
  if (specs.size() != schema.num_attributes()) {
    return Status::InvalidArgument("one ChainAttributeSpec per attribute required");
  }
  std::vector<std::vector<random::AliasSampler>> samplers(specs.size());
  for (size_t j = 0; j < specs.size(); ++j) {
    const ChainAttributeSpec& spec = specs[j];
    const size_t cardinality = schema.Cardinality(j);
    size_t expected_rows = 1;
    if (spec.parent >= 0) {
      if (static_cast<size_t>(spec.parent) >= j) {
        return Status::InvalidArgument(
            "attribute " + std::to_string(j) +
            ": parent must precede it in the chain");
      }
      expected_rows = schema.Cardinality(static_cast<size_t>(spec.parent));
    }
    if (spec.distributions.size() != expected_rows) {
      return Status::InvalidArgument(
          "attribute " + std::to_string(j) + ": expected " +
          std::to_string(expected_rows) + " distribution rows, got " +
          std::to_string(spec.distributions.size()));
    }
    samplers[j].reserve(expected_rows);
    for (const std::vector<double>& row : spec.distributions) {
      if (row.size() != cardinality) {
        return Status::InvalidArgument("attribute " + std::to_string(j) +
                                       ": distribution row arity mismatch");
      }
      FRAPP_ASSIGN_OR_RETURN(random::AliasSampler sampler,
                             random::AliasSampler::Create(row));
      samplers[j].push_back(std::move(sampler));
    }
  }
  return ChainGenerator(std::move(schema), std::move(specs), std::move(samplers));
}

StatusOr<CategoricalTable> ChainGenerator::Generate(size_t n, uint64_t seed) const {
  FRAPP_ASSIGN_OR_RETURN(CategoricalTable table, CategoricalTable::Create(schema_));
  random::Pcg64 rng(seed);
  FRAPP_RETURN_IF_ERROR(AppendRows(&table, n, rng));
  return table;
}

Status ChainGenerator::AppendRows(CategoricalTable* out, size_t n,
                                  random::Pcg64& rng) const {
  out->Reserve(out->num_rows() + n);
  std::vector<uint8_t> row(schema_.num_attributes());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < schema_.num_attributes(); ++j) {
      const ChainAttributeSpec& spec = specs_[j];
      const size_t sampler_row =
          (spec.parent < 0) ? 0 : row[static_cast<size_t>(spec.parent)];
      row[j] = static_cast<uint8_t>(samplers_[j][sampler_row].Sample(rng));
    }
    FRAPP_RETURN_IF_ERROR(out->AppendRow(row));
  }
  return Status::OK();
}

linalg::Vector ChainGenerator::ExactMarginal(size_t attribute) const {
  FRAPP_CHECK_LT(attribute, schema_.num_attributes());
  // Forward pass: marginals of each attribute in chain order.
  std::vector<linalg::Vector> marginals(attribute + 1);
  for (size_t j = 0; j <= attribute; ++j) {
    const ChainAttributeSpec& spec = specs_[j];
    const size_t cardinality = schema_.Cardinality(j);
    linalg::Vector m(cardinality);
    if (spec.parent < 0) {
      for (size_t c = 0; c < cardinality; ++c) {
        m[c] = samplers_[j][0].Probability(c);
      }
    } else {
      const linalg::Vector& parent_marginal =
          marginals[static_cast<size_t>(spec.parent)];
      for (size_t r = 0; r < parent_marginal.size(); ++r) {
        for (size_t c = 0; c < cardinality; ++c) {
          m[c] += parent_marginal[r] * samplers_[j][r].Probability(c);
        }
      }
    }
    marginals[j] = std::move(m);
  }
  return marginals[attribute];
}

}  // namespace data
}  // namespace frapp
