#include "frapp/data/shard_io.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace frapp {
namespace data {

namespace {

constexpr char kMagic[8] = {'F', 'R', 'A', 'P', 'P', 'B', 'I', 'N'};
constexpr uint32_t kFormatVersion = 1;
constexpr size_t kHeaderBytes = 8 + 4 + 8 + 4 + 8;

void AppendBytes(std::string& buf, const void* data, size_t n) {
  buf.append(static_cast<const char*>(data), n);
}

void AppendU32(std::string& buf, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  AppendBytes(buf, b, 4);
}

void AppendU64(std::string& buf, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  AppendBytes(buf, b, 8);
}

uint32_t ReadU32(const char* b) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(b[i]);
  return v;
}

uint64_t ReadU64(const char* b) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | static_cast<uint8_t>(b[i]);
  return v;
}

/// FNV-1a, fed length-prefixed strings so "ab"+"c" and "a"+"bc" differ.
struct Fnv {
  uint64_t h = 0xcbf29ce484222325ULL;

  void Mix(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  void Mix(const std::string& s) {
    Mix(static_cast<uint64_t>(s.size()));
    for (char c : s) {
      h ^= static_cast<uint8_t>(c);
      h *= 0x100000001b3ULL;
    }
  }
};

}  // namespace

uint64_t SchemaFingerprint(const CategoricalSchema& schema) {
  Fnv fnv;
  fnv.Mix(static_cast<uint64_t>(schema.num_attributes()));
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    const Attribute& attr = schema.attribute(j);
    fnv.Mix(attr.name);
    fnv.Mix(static_cast<uint64_t>(attr.cardinality()));
    for (const std::string& label : attr.categories) fnv.Mix(label);
  }
  return fnv.h;
}

Status WriteBinaryTable(const CategoricalTable& table,
                        const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");

  const CategoricalSchema& schema = table.schema();
  const size_t m = schema.num_attributes();
  const size_t n = table.num_rows();

  std::string header;
  header.reserve(kHeaderBytes);
  AppendBytes(header, kMagic, sizeof(kMagic));
  AppendU32(header, kFormatVersion);
  AppendU64(header, SchemaFingerprint(schema));
  AppendU32(header, static_cast<uint32_t>(m));
  AppendU64(header, n);
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  // Row-major u16 cells, gathered from the columnar table in bounded row
  // blocks so the write buffer stays small for any table size.
  constexpr size_t kRowsPerBlock = 4096;
  std::vector<char> block(kRowsPerBlock * m * 2);
  for (size_t begin = 0; begin < n; begin += kRowsPerBlock) {
    const size_t end = std::min(n, begin + kRowsPerBlock);
    char* p = block.data();
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = 0; j < m; ++j) {
        const uint16_t v = table.Value(i, j);
        *p++ = static_cast<char>(v & 0xff);
        *p++ = static_cast<char>((v >> 8) & 0xff);
      }
    }
    out.write(block.data(), p - block.data());
  }
  if (!out) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

Status AppendBinaryTable(const CategoricalTable& rows,
                         const std::string& path) {
  std::fstream io(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!io) return Status::IOError("cannot open '" + path + "' for appending");

  char header[kHeaderBytes];
  io.read(header, kHeaderBytes);
  if (io.gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
    return Status::InvalidArgument("'" + path +
                                   "' is too short to hold a binary header");
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a FRAPP binary shard file");
  }
  const uint32_t version = ReadU32(header + 8);
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        "'" + path + "' has format version " + std::to_string(version) +
        ", this writer understands " + std::to_string(kFormatVersion));
  }
  const CategoricalSchema& schema = rows.schema();
  if (ReadU64(header + 12) != SchemaFingerprint(schema)) {
    return Status::InvalidArgument(
        "'" + path +
        "' was written under a different schema (fingerprint mismatch); "
        "appended rows would mis-label its cells");
  }
  const size_t m = schema.num_attributes();
  if (ReadU32(header + 20) != m) {
    return Status::InvalidArgument(
        "'" + path + "' has " + std::to_string(ReadU32(header + 20)) +
        " columns, appended rows have " + std::to_string(m));
  }
  const uint64_t old_rows = ReadU64(header + 24);

  io.seekp(static_cast<std::streamoff>(kHeaderBytes + old_rows * m * 2));
  constexpr size_t kRowsPerBlock = 4096;
  std::vector<char> block(kRowsPerBlock * m * 2);
  const size_t n = rows.num_rows();
  for (size_t begin = 0; begin < n; begin += kRowsPerBlock) {
    const size_t end = std::min(n, begin + kRowsPerBlock);
    char* p = block.data();
    for (size_t i = begin; i < end; ++i) {
      for (size_t j = 0; j < m; ++j) {
        const uint16_t v = rows.Value(i, j);
        *p++ = static_cast<char>(v & 0xff);
        *p++ = static_cast<char>((v >> 8) & 0xff);
      }
    }
    io.write(block.data(), p - block.data());
  }
  if (!io) return Status::IOError("write failure on '" + path + "'");

  // Cells land before the count: a crash mid-append leaves the header
  // still describing the old, fully-valid prefix.
  std::string count;
  AppendU64(count, old_rows + n);
  io.seekp(24);
  io.write(count.data(), static_cast<std::streamsize>(count.size()));
  io.flush();
  if (!io) return Status::IOError("write failure on '" + path + "'");
  return Status::OK();
}

StatusOr<BinaryShardReader> BinaryShardReader::Open(
    const std::string& path, const CategoricalSchema& schema) {
  BinaryShardReader reader(path, schema);
  reader.in_.open(path, std::ios::binary);
  if (!reader.in_) {
    return Status::IOError("cannot open '" + path + "' for reading");
  }
  char header[kHeaderBytes];
  reader.in_.read(header, kHeaderBytes);
  if (reader.in_.gcount() != static_cast<std::streamsize>(kHeaderBytes)) {
    return Status::InvalidArgument("'" + path +
                                   "' is too short to hold a binary header");
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("'" + path +
                                   "' is not a FRAPP binary shard file");
  }
  const uint32_t version = ReadU32(header + 8);
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        "'" + path + "' has format version " + std::to_string(version) +
        ", this reader understands " + std::to_string(kFormatVersion));
  }
  const uint64_t fingerprint = ReadU64(header + 12);
  if (fingerprint != SchemaFingerprint(schema)) {
    return Status::InvalidArgument(
        "'" + path +
        "' was written under a different schema (fingerprint mismatch); "
        "re-convert the source CSV under the current schema");
  }
  const uint32_t columns = ReadU32(header + 20);
  if (columns != schema.num_attributes()) {
    return Status::InvalidArgument(
        "'" + path + "' has " + std::to_string(columns) +
        " columns, schema expects " +
        std::to_string(schema.num_attributes()));
  }
  reader.total_rows_ = ReadU64(header + 24);
  return reader;
}

Status BinaryShardReader::SkipToRow(size_t row) {
  if (row > total_rows_) {
    return Status::OutOfRange("cannot skip to row " + std::to_string(row) +
                              " of '" + path_ + "' (" +
                              std::to_string(total_rows_) + " rows)");
  }
  const size_t m = schema_.num_attributes();
  in_.clear();
  in_.seekg(static_cast<std::streamoff>(kHeaderBytes + row * m * 2));
  if (!in_) {
    return Status::IOError("seek failure on '" + path_ + "'");
  }
  rows_read_ = row;
  return Status::OK();
}

StatusOr<CategoricalTable> BinaryShardReader::ReadShard(size_t max_rows) {
  FRAPP_ASSIGN_OR_RETURN(CategoricalTable table,
                         CategoricalTable::Create(schema_));
  const size_t m = schema_.num_attributes();
  const size_t want = std::min(max_rows, total_rows_ - rows_read_);
  if (want == 0) return table;

  std::vector<char> raw(want * m * 2);
  in_.read(raw.data(), static_cast<std::streamsize>(raw.size()));
  const size_t got_bytes = static_cast<size_t>(in_.gcount());
  if (got_bytes != raw.size()) {
    return Status::InvalidArgument(
        "'" + path_ + "' is truncated: header promises " +
        std::to_string(total_rows_) + " rows but the data ends inside row " +
        std::to_string(rows_read_ + got_bytes / (m * 2)));
  }

  // Scatter the row-major u16 cells into the table's columns, validating
  // each id against its column's cardinality (the fingerprint pins the
  // schema, but a corrupt or hand-edited payload must not produce
  // out-of-range ids downstream).
  table.Reserve(want);
  table.AppendZeroRows(want);
  std::vector<uint8_t*> columns(m);
  std::vector<uint16_t> cardinality(m);
  for (size_t j = 0; j < m; ++j) {
    columns[j] = table.MutableColumnData(j);
    cardinality[j] = static_cast<uint16_t>(schema_.Cardinality(j));
  }
  const char* p = raw.data();
  for (size_t i = 0; i < want; ++i) {
    for (size_t j = 0; j < m; ++j) {
      const uint16_t v = static_cast<uint16_t>(
          static_cast<uint8_t>(p[0]) |
          (static_cast<uint16_t>(static_cast<uint8_t>(p[1])) << 8));
      p += 2;
      if (v >= cardinality[j]) {
        return Status::InvalidArgument(
            "'" + path_ + "' row " + std::to_string(rows_read_ + i) +
            ": cell id " + std::to_string(v) + " exceeds cardinality " +
            std::to_string(cardinality[j]) + " of column '" +
            schema_.attribute(j).name + "'");
      }
      columns[j][i] = static_cast<uint8_t>(v);
    }
  }
  rows_read_ += want;
  return table;
}

}  // namespace data
}  // namespace frapp
