#include "frapp/data/boolean_vertical_index.h"

#include "frapp/common/check.h"
#include "frapp/mining/kernels.h"

namespace frapp {
namespace data {

BooleanVerticalIndex::BooleanVerticalIndex(const BooleanTable& table,
                                           const RowRange& range) {
  FRAPP_CHECK_LE(range.begin, range.end);
  FRAPP_CHECK_LE(range.end, table.num_rows());
  num_rows_ = range.size();
  num_bits_ = table.num_bits();
  words_ = (num_rows_ + 63) / 64;
  bits_.assign(num_bits_ * words_, 0);
  for (size_t i = 0; i < num_rows_; ++i) {
    uint64_t row = table.RowBits(range.begin + i);
    const size_t word = i >> 6;
    const uint64_t bit = 1ull << (i & 63);
    while (row != 0) {
      const unsigned p = static_cast<unsigned>(__builtin_ctzll(row));
      bits_[p * words_ + word] |= bit;
      row &= row - 1;
    }
  }
}

BooleanVerticalIndex BooleanVerticalIndex::FromRaw(size_t num_rows,
                                                   size_t num_bits,
                                                   std::vector<uint64_t> bits) {
  BooleanVerticalIndex index;
  index.num_rows_ = num_rows;
  index.num_bits_ = num_bits;
  index.words_ = (num_rows + 63) / 64;
  index.bits_ = std::move(bits);
  return index;
}

void BooleanVerticalIndex::SupersetCounts(const std::vector<size_t>& positions,
                                          size_t begin_pattern,
                                          size_t end_pattern,
                                          int64_t* out) const {
  const size_t k = positions.size();
  // Checked before any caller shifts/allocates 2^k, see PatternCounts.
  FRAPP_CHECK_LE(k, kMaxPatternLength);
  FRAPP_CHECK_LE(end_pattern, 1ull << k);
  for (size_t pos : positions) FRAPP_CHECK_LT(pos, num_bits_);
  const mining::KernelTable& kernels = mining::ActiveKernels();
  // Per pattern S, gather the popcount(S) <= kMaxPatternLength bitmap
  // pointers and fold them through the dispatched intersect+popcount kernel.
  const uint64_t* maps[kMaxPatternLength];
  for (size_t s = begin_pattern; s < end_pattern; ++s) {
    if (s == 0) {
      out[0] = static_cast<int64_t>(num_rows_);
      continue;
    }
    size_t n = 0;
    for (uint64_t rest = s; rest != 0; rest &= rest - 1) {
      maps[n++] = Bitmap(positions[static_cast<size_t>(__builtin_ctzll(rest))]);
    }
    out[s - begin_pattern] =
        static_cast<int64_t>(kernels.intersect_popcount(maps, n, words_));
  }
}

void BooleanVerticalIndex::MobiusExactCounts(std::vector<int64_t>& counts) {
  // Subtract, per bit axis, the count with that bit forced set: "at least S"
  // becomes "exactly S".
  const size_t patterns = counts.size();
  for (size_t bit = 1; bit < patterns; bit <<= 1) {
    for (size_t s = 0; s < patterns; ++s) {
      if ((s & bit) == 0) counts[s] -= counts[s | bit];
    }
  }
}

std::vector<int64_t> BooleanVerticalIndex::PatternCounts(
    const std::vector<size_t>& positions) const {
  // Enforce the length cap BEFORE the 2^k shift/allocation: 64+ positions
  // would be undefined behavior on the shift, 30+ a multi-GiB allocation.
  FRAPP_CHECK_LE(positions.size(), kMaxPatternLength);
  const size_t patterns = 1ull << positions.size();
  std::vector<int64_t> counts(patterns);
  SupersetCounts(positions, 0, patterns, counts.data());
  MobiusExactCounts(counts);
  return counts;
}

std::vector<int64_t> BooleanVerticalIndex::HitHistogram(
    const std::vector<size_t>& positions) const {
  return HistogramFromPatternCounts(PatternCounts(positions),
                                    positions.size());
}

std::vector<int64_t> BooleanVerticalIndex::HistogramFromPatternCounts(
    const std::vector<int64_t>& counts, size_t num_positions) {
  std::vector<int64_t> histogram(num_positions + 1, 0);
  for (size_t a = 0; a < counts.size(); ++a) {
    histogram[static_cast<size_t>(__builtin_popcountll(a))] += counts[a];
  }
  return histogram;
}

}  // namespace data
}  // namespace frapp
