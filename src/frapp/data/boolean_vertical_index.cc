#include "frapp/data/boolean_vertical_index.h"

#include "frapp/common/check.h"

namespace frapp {
namespace data {

BooleanVerticalIndex::BooleanVerticalIndex(const BooleanTable& table) {
  num_rows_ = table.num_rows();
  words_ = (num_rows_ + 63) / 64;
  const size_t num_bits = table.num_bits();
  bits_.assign(num_bits * words_, 0);
  for (size_t i = 0; i < num_rows_; ++i) {
    uint64_t row = table.RowBits(i);
    const size_t word = i >> 6;
    const uint64_t bit = 1ull << (i & 63);
    while (row != 0) {
      const unsigned p = static_cast<unsigned>(__builtin_ctzll(row));
      bits_[p * words_ + word] |= bit;
      row &= row - 1;
    }
  }
}

std::vector<int64_t> BooleanVerticalIndex::PatternCounts(
    const std::vector<size_t>& positions) const {
  const size_t k = positions.size();
  FRAPP_CHECK_LE(k, kMaxIndexedLength);
  const size_t patterns = 1ull << k;

  // Superset intersection counts: counts[S] = #rows with all bits of S set
  // (bits of positions OUTSIDE S unconstrained).
  std::vector<int64_t> counts(patterns);
  counts[0] = static_cast<int64_t>(num_rows_);
  for (size_t s = 1; s < patterns; ++s) {
    const uint64_t* first = Bitmap(positions[static_cast<size_t>(
        __builtin_ctzll(static_cast<uint64_t>(s)))]);
    int64_t c = 0;
    for (size_t w = 0; w < words_; ++w) {
      uint64_t acc = first[w];
      for (uint64_t rest = s & (s - 1); rest != 0; rest &= rest - 1) {
        acc &= Bitmap(positions[static_cast<size_t>(__builtin_ctzll(rest))])[w];
      }
      c += __builtin_popcountll(acc);
    }
    counts[s] = c;
  }

  // Mobius transform over the subset lattice turns "at least S" into
  // "exactly S": subtract, per axis, the count with that bit forced set.
  for (size_t b = 0; b < k; ++b) {
    const size_t bit = 1ull << b;
    for (size_t s = 0; s < patterns; ++s) {
      if ((s & bit) == 0) counts[s] -= counts[s | bit];
    }
  }
  return counts;
}

std::vector<int64_t> BooleanVerticalIndex::HitHistogram(
    const std::vector<size_t>& positions) const {
  const std::vector<int64_t> patterns = PatternCounts(positions);
  std::vector<int64_t> histogram(positions.size() + 1, 0);
  for (size_t a = 0; a < patterns.size(); ++a) {
    histogram[static_cast<size_t>(__builtin_popcountll(a))] += patterns[a];
  }
  return histogram;
}

}  // namespace data
}  // namespace frapp
