// Joint-domain indexing: bijections between categorical records
// (v_1, ..., v_M) and indices in I_U = {0, ..., |S_U|-1}, for the full
// attribute set or any subset Cs (paper Sections 2 and 6).
//
// Convention: mixed radix with the FIRST attribute most significant, matching
// the paper's n_j = prod_{k<=j} |S_U^k| prefix products and the Kronecker
// ordering in linalg.

#ifndef FRAPP_DATA_DOMAIN_INDEX_H_
#define FRAPP_DATA_DOMAIN_INDEX_H_

#include <cstdint>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/schema.h"

namespace frapp {
namespace data {

/// Encodes/decodes records over an ordered subset of schema attributes.
/// With the full attribute list this is the paper's I_U mapping.
class DomainIndexer {
 public:
  /// Indexer over all attributes of `schema`.
  static DomainIndexer OverAllAttributes(const CategoricalSchema& schema);

  /// Indexer over the given attribute indices (must be strictly increasing
  /// and in range).
  static StatusOr<DomainIndexer> OverSubset(const CategoricalSchema& schema,
                                            std::vector<size_t> attribute_indices);

  /// Number of attributes covered by this indexer.
  size_t num_attributes() const { return cardinalities_.size(); }

  /// Domain size of the covered (sub-)space: n_Cs = prod |S_U^j|.
  uint64_t domain_size() const { return domain_size_; }

  /// Attribute indices (into the schema) covered, ascending.
  const std::vector<size_t>& attribute_indices() const { return attribute_indices_; }

  /// Cardinality of the k-th covered attribute.
  size_t cardinality(size_t k) const { return cardinalities_[k]; }

  /// Encodes category values (one per covered attribute, in order) into a
  /// joint index. Values must be < the respective cardinality.
  uint64_t Encode(const std::vector<size_t>& values) const;

  /// Encodes from a full record (indexed by schema attribute), selecting the
  /// covered attributes.
  uint64_t EncodeFromFullRecord(const std::vector<uint8_t>& full_record) const;

  /// Decodes a joint index back into per-attribute category values.
  std::vector<size_t> Decode(uint64_t index) const;

 private:
  DomainIndexer(std::vector<size_t> attribute_indices, std::vector<size_t> cardinalities);

  std::vector<size_t> attribute_indices_;
  std::vector<size_t> cardinalities_;
  std::vector<uint64_t> strides_;  // strides_[k] = prod of cardinalities after k
  uint64_t domain_size_;
};

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_DOMAIN_INDEX_H_
