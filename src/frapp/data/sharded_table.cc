#include "frapp/data/sharded_table.h"

#include <algorithm>
#include <cstring>

namespace frapp {
namespace data {

std::vector<RowRange> ShardedTable::Plan(size_t num_rows, size_t num_shards,
                                         size_t alignment) {
  std::vector<RowRange> shards;
  if (num_rows == 0 || alignment == 0) return shards;
  const size_t quanta = (num_rows + alignment - 1) / alignment;
  const size_t count =
      num_shards == 0 ? quanta : std::min(num_shards, quanta);
  shards.reserve(count);
  // Distribute the quanta as evenly as possible: the first `extra` shards
  // get one more quantum than the rest. All boundaries except the final
  // `num_rows` are multiples of `alignment`.
  const size_t base = quanta / count;
  const size_t extra = quanta % count;
  size_t begin = 0;
  for (size_t s = 0; s < count; ++s) {
    const size_t span = (base + (s < extra ? 1 : 0)) * alignment;
    const size_t end = std::min(num_rows, begin + span);
    shards.push_back(RowRange{begin, end});
    begin = end;
  }
  return shards;
}

ShardedTable ShardedTable::Create(const CategoricalTable& table,
                                  size_t num_shards, size_t alignment) {
  return ShardedTable(table, Plan(table.num_rows(), num_shards, alignment));
}

size_t ShardedTable::MaxShardRows() const {
  size_t max_rows = 0;
  for (const RowRange& range : shards_) max_rows = std::max(max_rows, range.size());
  return max_rows;
}

StatusOr<CategoricalTable> ShardedTable::MaterializeShard(size_t shard) const {
  if (shard >= shards_.size()) {
    return Status::OutOfRange("shard index out of range");
  }
  return CopyRowRange(*table_, shards_[shard]);
}

StatusOr<CategoricalTable> CopyRowRange(const CategoricalTable& table,
                                        const RowRange& range) {
  if (range.begin > range.end || range.end > table.num_rows()) {
    return Status::OutOfRange("row range exceeds table");
  }
  FRAPP_ASSIGN_OR_RETURN(CategoricalTable out,
                         CategoricalTable::Create(table.schema()));
  out.AppendZeroRows(range.size());
  for (size_t j = 0; j < table.num_attributes(); ++j) {
    std::memcpy(out.MutableColumnData(j), table.Column(j).data() + range.begin,
                range.size());
  }
  return out;
}

}  // namespace data
}  // namespace frapp
