#include "frapp/data/schema.h"

#include <unordered_set>

namespace frapp {
namespace data {

StatusOr<CategoricalSchema> CategoricalSchema::Create(
    std::vector<Attribute> attributes) {
  if (attributes.empty()) {
    return Status::InvalidArgument("schema needs at least one attribute");
  }
  std::unordered_set<std::string> names;
  for (const Attribute& attr : attributes) {
    if (attr.name.empty()) {
      return Status::InvalidArgument("attribute name must be non-empty");
    }
    if (!names.insert(attr.name).second) {
      return Status::InvalidArgument("duplicate attribute name: " + attr.name);
    }
    if (attr.categories.empty()) {
      return Status::InvalidArgument("attribute '" + attr.name +
                                     "' needs at least one category");
    }
    std::unordered_set<std::string> cats;
    for (const std::string& c : attr.categories) {
      if (!cats.insert(c).second) {
        return Status::InvalidArgument("duplicate category '" + c +
                                       "' in attribute '" + attr.name + "'");
      }
    }
  }
  return CategoricalSchema(std::move(attributes));
}

uint64_t CategoricalSchema::DomainSize() const {
  uint64_t size = 1;
  for (const Attribute& attr : attributes_) {
    size *= static_cast<uint64_t>(attr.cardinality());
  }
  return size;
}

size_t CategoricalSchema::TotalCategories() const {
  size_t total = 0;
  for (const Attribute& attr : attributes_) total += attr.cardinality();
  return total;
}

StatusOr<size_t> CategoricalSchema::AttributeIndex(const std::string& name) const {
  for (size_t j = 0; j < attributes_.size(); ++j) {
    if (attributes_[j].name == name) return j;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

StatusOr<size_t> CategoricalSchema::CategoryIndex(size_t j,
                                                  const std::string& category) const {
  if (j >= attributes_.size()) {
    return Status::OutOfRange("attribute index out of range");
  }
  const Attribute& attr = attributes_[j];
  for (size_t c = 0; c < attr.categories.size(); ++c) {
    if (attr.categories[c] == category) return c;
  }
  return Status::NotFound("attribute '" + attr.name + "' has no category '" +
                          category + "'");
}

}  // namespace data
}  // namespace frapp
