// Per-column label interning for the CSV ingest hot loop.
//
// CategoricalSchema::CategoryIndex is a linear scan with a std::string
// compare per candidate — fine for occasional lookups, ruinous when ingest
// resolves one label per cell over millions of rows. A LabelInterner is the
// amortized answer: built once per column, it resolves a label to its
// category id through
//
//   1. a LAST-HIT fast path: real tabular extracts are sorted or clustered
//      (long runs of the same label down a column), so the previous cell's
//      id answers most lookups with one string compare and no hashing;
//   2. an open-addressing hash table (power-of-two capacity, linear
//      probing, FNV-1a over the bytes) when the run breaks.
//
// Lookups take a string_view and never allocate. The interner borrows the
// label vector it was built from; callers keep it alive (a
// CategoricalSchema's attributes are immutable after construction, so
// interners built from one are valid for the schema's lifetime).

#ifndef FRAPP_DATA_LABEL_INTERNER_H_
#define FRAPP_DATA_LABEL_INTERNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace frapp {
namespace data {

class CategoricalSchema;

/// Hash-based label -> category-id resolver for ONE column.
///
/// Not thread-safe: the last-hit fast path mutates a cursor on every lookup.
/// Ingest is single-producer (one parser thread per stream), so each stream
/// owns its interners; give each thread its own instance.
class LabelInterner {
 public:
  /// Builds the table over `labels` (distinct, as schema validation
  /// guarantees; at most 2^31 entries). `labels` is borrowed and must
  /// outlive the interner.
  explicit LabelInterner(const std::vector<std::string>& labels);

  /// Category id of `label`, or -1 when the column has no such label.
  int Intern(std::string_view label) {
    // Fast path: columns of real extracts are clustered, so the previous
    // cell's answer usually repeats.
    if (last_hit_ >= 0 &&
        label == (*labels_)[static_cast<size_t>(last_hit_)]) {
      return last_hit_;
    }
    return Probe(label);
  }

  /// Labels this interner resolves against (the column's category list).
  const std::vector<std::string>& labels() const { return *labels_; }

 private:
  int Probe(std::string_view label);

  const std::vector<std::string>* labels_;
  std::vector<uint32_t> slots_;  // category id + 1; 0 marks an empty slot
  size_t mask_ = 0;              // slots_.size() - 1 (power of two)
  int last_hit_ = -1;
};

/// One interner per schema column, in attribute order — the unit the CSV /
/// binary readers hold. Borrows `schema`; same single-thread contract as
/// LabelInterner.
std::vector<LabelInterner> MakeColumnInterners(const CategoricalSchema& schema);

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_LABEL_INTERNER_H_
