#include "frapp/data/label_interner.h"

#include "frapp/data/schema.h"

namespace frapp {
namespace data {

namespace {

/// FNV-1a over the label bytes: no setup cost, good spread for the short
/// human-readable labels categorical schemas carry.
uint64_t HashLabel(std::string_view label) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : label) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Smallest power of two >= 2 * n (load factor <= 0.5 keeps linear-probe
/// chains short).
size_t TableSize(size_t n) {
  size_t size = 8;
  while (size < 2 * n) size *= 2;
  return size;
}

}  // namespace

LabelInterner::LabelInterner(const std::vector<std::string>& labels)
    : labels_(&labels), slots_(TableSize(labels.size()), 0) {
  mask_ = slots_.size() - 1;
  for (size_t id = 0; id < labels.size(); ++id) {
    size_t slot = HashLabel(labels[id]) & mask_;
    while (slots_[slot] != 0) slot = (slot + 1) & mask_;
    slots_[slot] = static_cast<uint32_t>(id) + 1;
  }
}

int LabelInterner::Probe(std::string_view label) {
  size_t slot = HashLabel(label) & mask_;
  while (true) {
    const uint32_t stored = slots_[slot];
    if (stored == 0) return -1;
    const int id = static_cast<int>(stored - 1);
    if ((*labels_)[static_cast<size_t>(id)] == label) {
      last_hit_ = id;
      return id;
    }
    slot = (slot + 1) & mask_;
  }
}

std::vector<LabelInterner> MakeColumnInterners(
    const CategoricalSchema& schema) {
  std::vector<LabelInterner> interners;
  interners.reserve(schema.num_attributes());
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    interners.emplace_back(schema.attribute(j).categories);
  }
  return interners;
}

}  // namespace data
}  // namespace frapp
