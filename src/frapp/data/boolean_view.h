// Boolean (transaction) view of categorical data.
//
// MASK and Cut-and-Paste operate on boolean databases. The paper maps each
// categorical attribute j to |S_U^j| boolean attributes (one per category),
// for a total of M_b = sum_j |S_U^j| booleans; every original record then
// has exactly M ones (paper Section 7, "Perturbation Mechanisms").

#ifndef FRAPP_DATA_BOOLEAN_VIEW_H_
#define FRAPP_DATA_BOOLEAN_VIEW_H_

#include <cstdint>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/sharded_table.h"
#include "frapp/data/table.h"

namespace frapp {
namespace data {

/// Position map from (attribute, category) to a bit index in [0, M_b).
/// Bits are laid out attribute-major: attribute 0's categories first.
class BooleanLayout {
 public:
  explicit BooleanLayout(const CategoricalSchema& schema);

  /// Total boolean attributes M_b.
  size_t num_bits() const { return num_bits_; }

  /// Number of source categorical attributes M.
  size_t num_attributes() const { return offsets_.size(); }

  /// Bit index of (attribute j, category c).
  size_t BitPosition(size_t attribute, size_t category) const {
    return offsets_[attribute] + category;
  }

  /// First bit of attribute j (its categories occupy a contiguous range).
  size_t AttributeOffset(size_t attribute) const { return offsets_[attribute]; }

 private:
  std::vector<size_t> offsets_;
  size_t num_bits_;
};

/// A boolean database of N rows by M_b bits, one uint64 word row-stride
/// (FRAPP's workloads have M_b <= 64; larger layouts are rejected).
class BooleanTable {
 public:
  /// One-hot encodes `table` per the layout. Fails when M_b > 64.
  static StatusOr<BooleanTable> FromCategorical(const CategoricalTable& table);

  /// One-hot encodes only rows [range.begin, range.end) of `table` (the
  /// shard-streaming encoder: a boolean shard never needs the whole table).
  static StatusOr<BooleanTable> FromCategoricalRange(const CategoricalTable& table,
                                                     const RowRange& range);

  /// Empty table with `num_bits` boolean attributes.
  static StatusOr<BooleanTable> CreateEmpty(size_t num_bits);

  size_t num_rows() const { return rows_.size(); }
  size_t num_bits() const { return num_bits_; }

  uint64_t RowBits(size_t i) const { return rows_[i]; }
  void AppendRow(uint64_t bits) { rows_.push_back(bits & mask_); }

  /// Overwrites row i (bulk writers that pre-size with AppendRow(0)).
  void SetRowBits(size_t i, uint64_t bits) { rows_[i] = bits & mask_; }

  bool Get(size_t row, size_t bit) const { return (rows_[row] >> bit) & 1u; }

  /// Number of set bits in row i.
  int PopCount(size_t row) const { return __builtin_popcountll(rows_[row]); }

  /// Mask with the low num_bits set.
  uint64_t ValidMask() const { return mask_; }

 private:
  BooleanTable(size_t num_bits)
      : num_bits_(num_bits),
        mask_(num_bits >= 64 ? ~0ull : ((1ull << num_bits) - 1)) {}

  size_t num_bits_;
  uint64_t mask_;
  std::vector<uint64_t> rows_;
};

}  // namespace data
}  // namespace frapp

#endif  // FRAPP_DATA_BOOLEAN_VIEW_H_
