// Cyclic Jacobi eigensolver for real symmetric matrices. Used to compute
// condition numbers of symmetric perturbation matrices (paper Theorem 1:
// c = lambda_max / lambda_min for positive definite matrices).

#ifndef FRAPP_LINALG_JACOBI_EIGEN_H_
#define FRAPP_LINALG_JACOBI_EIGEN_H_

#include "frapp/common/statusor.h"
#include "frapp/linalg/matrix.h"
#include "frapp/linalg/vector.h"

namespace frapp {
namespace linalg {

/// Eigendecomposition of a symmetric matrix.
struct SymmetricEigenResult {
  /// Eigenvalues in ascending order.
  Vector eigenvalues;
  /// Column j of this matrix is the eigenvector for eigenvalues[j].
  Matrix eigenvectors;
  /// Number of full Jacobi sweeps performed.
  int sweeps = 0;
};

/// Options controlling the Jacobi iteration.
struct JacobiOptions {
  /// Convergence threshold on the off-diagonal Frobenius norm, relative to
  /// the matrix norm.
  double tolerance = 1e-12;
  /// Hard cap on sweeps; convergence for symmetric Jacobi is quadratic, so
  /// real inputs finish in well under this.
  int max_sweeps = 100;
  /// When false, eigenvectors are not accumulated (faster).
  bool compute_eigenvectors = true;
};

/// Computes all eigenvalues (and optionally eigenvectors) of the symmetric
/// matrix `a`. Returns InvalidArgument for non-square or asymmetric input and
/// NumericalError when the sweep cap is hit before convergence.
StatusOr<SymmetricEigenResult> SymmetricEigen(const Matrix& a,
                                              const JacobiOptions& options = {});

}  // namespace linalg
}  // namespace frapp

#endif  // FRAPP_LINALG_JACOBI_EIGEN_H_
