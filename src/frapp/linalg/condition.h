// Condition numbers.
//
// The paper's estimation-error bound (Theorem 1, Eq. 9) is governed by the
// condition number of the perturbation matrix: well-conditioned matrices
// (c near 1) give stable reconstruction, ill-conditioned ones (MASK ~1e5,
// Cut-and-Paste ~1e7 in the paper's experiments) amplify the sampling noise.

#ifndef FRAPP_LINALG_CONDITION_H_
#define FRAPP_LINALG_CONDITION_H_

#include "frapp/common/statusor.h"
#include "frapp/linalg/matrix.h"

namespace frapp {
namespace linalg {

/// Condition number of a symmetric positive definite matrix:
/// lambda_max / lambda_min (paper Eq. 14). Returns NumericalError when the
/// smallest eigenvalue is not positive.
StatusOr<double> SymmetricConditionNumber(const Matrix& a);

/// Spectral condition number sigma_max / sigma_min for a general square
/// matrix. Returns infinity-like NumericalError when the matrix is singular.
StatusOr<double> SpectralConditionNumber(const Matrix& a);

/// Dispatches to the symmetric path when `a` is symmetric (cheaper, and the
/// paper's definition for its matrices), otherwise to the spectral path.
StatusOr<double> ConditionNumber(const Matrix& a);

}  // namespace linalg
}  // namespace frapp

#endif  // FRAPP_LINALG_CONDITION_H_
