#include "frapp/linalg/matrix.h"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace frapp {
namespace linalg {

Matrix Matrix::FromRows(std::initializer_list<std::initializer_list<double>> rows) {
  const size_t r = rows.size();
  FRAPP_CHECK_GT(r, 0u);
  const size_t c = rows.begin()->size();
  Matrix out(r, c);
  size_t i = 0;
  for (const auto& row : rows) {
    FRAPP_CHECK_EQ(row.size(), c) << "ragged initializer rows";
    size_t j = 0;
    for (double v : row) out(i, j++) = v;
    ++i;
  }
  return out;
}

Matrix Matrix::Identity(size_t n) {
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Matrix Matrix::Diagonal(const Vector& diag) {
  Matrix out(diag.size(), diag.size());
  for (size_t i = 0; i < diag.size(); ++i) out(i, i) = diag[i];
  return out;
}

Vector Matrix::Row(size_t r) const {
  FRAPP_CHECK_LT(r, rows_);
  Vector out(cols_);
  for (size_t j = 0; j < cols_; ++j) out[j] = (*this)(r, j);
  return out;
}

Vector Matrix::Col(size_t c) const {
  FRAPP_CHECK_LT(c, cols_);
  Vector out(rows_);
  for (size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, c);
  return out;
}

Vector Matrix::MatVec(const Vector& x) const {
  FRAPP_CHECK_EQ(x.size(), cols_);
  Vector out(rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowData(i);
    double s = 0.0;
    for (size_t j = 0; j < cols_; ++j) s += row[j] * x[j];
    out[i] = s;
  }
  return out;
}

Vector Matrix::TransposedMatVec(const Vector& x) const {
  FRAPP_CHECK_EQ(x.size(), rows_);
  Vector out(cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* row = RowData(i);
    const double xi = x[i];
    for (size_t j = 0; j < cols_; ++j) out[j] += row[j] * xi;
  }
  return out;
}

Matrix Matrix::MatMul(const Matrix& other) const {
  FRAPP_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      const double* brow = other.RowData(k);
      double* orow = out.RowData(i);
      for (size_t j = 0; j < other.cols_; ++j) orow[j] += aik * brow[j];
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  FRAPP_CHECK_EQ(rows_, other.rows_);
  FRAPP_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  FRAPP_CHECK_EQ(rows_, other.rows_);
  FRAPP_CHECK_EQ(cols_, other.cols_);
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - other.data_[i];
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out(rows_, cols_);
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

bool Matrix::ApproxEquals(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

double Matrix::MaxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

bool Matrix::IsColumnStochastic(double tol) const {
  if (rows_ == 0 || cols_ == 0) return false;
  for (double v : data_) {
    if (v < -tol) return false;
  }
  for (size_t j = 0; j < cols_; ++j) {
    double sum = 0.0;
    for (size_t i = 0; i < rows_; ++i) sum += (*this)(i, j);
    if (std::fabs(sum - 1.0) > tol) return false;
  }
  return true;
}

bool Matrix::IsSymmetric(double tol) const {
  if (!IsSquare()) return false;
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i + 1; j < cols_; ++j) {
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
    }
  }
  return true;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os << std::setprecision(precision);
  for (size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[[" : " [");
    for (size_t j = 0; j < cols_; ++j) {
      if (j > 0) os << ", ";
      os << (*this)(i, j);
    }
    os << (i + 1 == rows_ ? "]]" : "]\n");
  }
  return os.str();
}

}  // namespace linalg
}  // namespace frapp
