// Dense row-major real matrix.
//
// FRAPP's perturbation matrices follow the paper's convention
// A[v][u] = p(u -> v): COLUMNS index original values and sum to one
// (column-stochastic / Markov, Eq. 1 of the paper).

#ifndef FRAPP_LINALG_MATRIX_H_
#define FRAPP_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "frapp/common/check.h"
#include "frapp/linalg/vector.h"

namespace frapp {
namespace linalg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// Zero matrix of shape rows x cols.
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// Matrix of shape rows x cols filled with `value`.
  Matrix(size_t rows, size_t cols, double value)
      : rows_(rows), cols_(cols), data_(rows * cols, value) {}

  /// Builds from nested initializer lists; all rows must have equal length.
  static Matrix FromRows(std::initializer_list<std::initializer_list<double>> rows);

  /// n x n identity.
  static Matrix Identity(size_t n);

  /// n x n matrix with every entry `value` (the J matrix scaled).
  static Matrix Constant(size_t n, double value) { return Matrix(n, n, value); }

  /// Diagonal matrix from `diag`.
  static Matrix Diagonal(const Vector& diag);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool IsSquare() const { return rows_ == cols_; }

  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }
  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }

  double At(size_t r, size_t c) const {
    FRAPP_CHECK_LT(r, rows_);
    FRAPP_CHECK_LT(c, cols_);
    return (*this)(r, c);
  }

  const double* RowData(size_t r) const { return data_.data() + r * cols_; }
  double* RowData(size_t r) { return data_.data() + r * cols_; }

  /// Copies row r into a Vector.
  Vector Row(size_t r) const;

  /// Copies column c into a Vector.
  Vector Col(size_t c) const;

  /// Matrix-vector product; x.size() must equal cols().
  Vector MatVec(const Vector& x) const;

  /// Transposed matrix-vector product A^T x; x.size() must equal rows().
  Vector TransposedMatVec(const Vector& x) const;

  /// Matrix-matrix product; this->cols() must equal other.rows().
  Matrix MatMul(const Matrix& other) const;

  Matrix Transposed() const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double s) const;

  /// True when |a_ij - b_ij| <= tol for all entries of same-shape matrices.
  bool ApproxEquals(const Matrix& other, double tol) const;

  /// max_ij |a_ij|.
  double MaxAbs() const;

  /// sqrt(sum a_ij^2).
  double FrobeniusNorm() const;

  /// True when all columns sum to 1 (within `tol`) and entries are >= -tol:
  /// the Markov property required of perturbation matrices (paper Eq. 1).
  bool IsColumnStochastic(double tol = 1e-9) const;

  /// True when a_ij == a_ji within `tol`.
  bool IsSymmetric(double tol = 1e-12) const;

  /// Multi-line human-readable rendering (diagnostics only).
  std::string ToString(int precision = 6) const;

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace linalg
}  // namespace frapp

#endif  // FRAPP_LINALG_MATRIX_H_
