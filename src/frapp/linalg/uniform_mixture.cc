#include "frapp/linalg/uniform_mixture.h"

#include <algorithm>
#include <cmath>

namespace frapp {
namespace linalg {

StatusOr<double> UniformMixtureMatrix::ConditionNumber() const {
  const double bulk = BulkEigenvalue();
  const double ones = OnesEigenvalue();
  const double lo = std::min(bulk, ones);
  const double hi = std::max(bulk, ones);
  if (lo <= 0.0) {
    return Status::NumericalError("uniform-mixture matrix is not positive definite");
  }
  return hi / lo;
}

Vector UniformMixtureMatrix::MatVec(const Vector& x) const {
  FRAPP_CHECK_EQ(x.size(), n_);
  const double total = x.Sum();
  Vector y(n_);
  for (size_t i = 0; i < n_; ++i) y[i] = a_ * x[i] + b_ * total;
  return y;
}

StatusOr<Vector> UniformMixtureMatrix::Solve(const Vector& y) const {
  if (y.size() != n_) {
    return Status::InvalidArgument("rhs dimension mismatch in uniform-mixture solve");
  }
  const double ones_eig = OnesEigenvalue();
  if (std::fabs(a_) < 1e-300 || std::fabs(ones_eig) < 1e-300) {
    return Status::NumericalError("uniform-mixture matrix is singular");
  }
  const double total = y.Sum();
  const double shift = b_ * total / ones_eig;
  Vector x(n_);
  for (size_t i = 0; i < n_; ++i) x[i] = (y[i] - shift) / a_;
  return x;
}

StatusOr<UniformMixtureMatrix> UniformMixtureMatrix::Inverse() const {
  const double ones_eig = OnesEigenvalue();
  if (std::fabs(a_) < 1e-300 || std::fabs(ones_eig) < 1e-300) {
    return Status::NumericalError("uniform-mixture matrix is singular");
  }
  // (aI + bJ)^{-1} = (1/a) I - (b / (a * (a + n b))) J.
  return UniformMixtureMatrix(n_, 1.0 / a_, -b_ / (a_ * ones_eig));
}

Matrix UniformMixtureMatrix::ToDense() const {
  Matrix m(n_, n_, b_);
  for (size_t i = 0; i < n_; ++i) m(i, i) += a_;
  return m;
}

bool UniformMixtureMatrix::IsColumnStochastic(double tol) const {
  if (DiagonalValue() < -tol || OffDiagonalValue() < -tol) return false;
  const double column_sum = DiagonalValue() + (n_ - 1) * OffDiagonalValue();
  return std::fabs(column_sum - 1.0) <= tol;
}

StatusOr<double> UniformMixtureMatrix::AmplificationRatio() const {
  const double d = DiagonalValue();
  const double o = OffDiagonalValue();
  if (n_ == 1) return 1.0;
  const double lo = std::min(d, o);
  const double hi = std::max(d, o);
  if (lo <= 0.0) {
    return Status::NumericalError(
        "amplification ratio undefined: non-positive matrix entry");
  }
  return hi / lo;
}

}  // namespace linalg
}  // namespace frapp
