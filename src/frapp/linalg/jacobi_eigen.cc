#include "frapp/linalg/jacobi_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace frapp {
namespace linalg {

namespace {

// Frobenius norm of the strictly upper triangle.
double OffDiagonalNorm(const Matrix& a) {
  double s = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = i + 1; j < a.cols(); ++j) s += a(i, j) * a(i, j);
  }
  return std::sqrt(s);
}

}  // namespace

StatusOr<SymmetricEigenResult> SymmetricEigen(const Matrix& a,
                                              const JacobiOptions& options) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("SymmetricEigen requires a square matrix");
  }
  if (!a.IsSymmetric(1e-9 * std::max(1.0, a.MaxAbs()))) {
    return Status::InvalidArgument("SymmetricEigen requires a symmetric matrix");
  }
  const size_t n = a.rows();
  Matrix work = a;
  Matrix vectors = Matrix::Identity(n);
  const double frob = std::max(a.FrobeniusNorm(), 1e-300);

  int sweep = 0;
  for (; sweep < options.max_sweeps; ++sweep) {
    if (OffDiagonalNorm(work) <= options.tolerance * frob) break;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = work(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        // Classic Jacobi rotation annihilating (p, q).
        const double app = work(p, p);
        const double aqq = work(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (size_t k = 0; k < n; ++k) {
          const double akp = work(k, p);
          const double akq = work(k, q);
          work(k, p) = c * akp - s * akq;
          work(k, q) = s * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = work(p, k);
          const double aqk = work(q, k);
          work(p, k) = c * apk - s * aqk;
          work(q, k) = s * apk + c * aqk;
        }
        if (options.compute_eigenvectors) {
          for (size_t k = 0; k < n; ++k) {
            const double vkp = vectors(k, p);
            const double vkq = vectors(k, q);
            vectors(k, p) = c * vkp - s * vkq;
            vectors(k, q) = s * vkp + c * vkq;
          }
        }
      }
    }
  }
  if (OffDiagonalNorm(work) > options.tolerance * frob) {
    return Status::NumericalError("Jacobi eigensolver did not converge in " +
                                  std::to_string(options.max_sweeps) + " sweeps");
  }

  // Sort ascending, permuting eigenvectors in step.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t i, size_t j) { return work(i, i) < work(j, j); });

  SymmetricEigenResult result;
  result.eigenvalues = Vector(n);
  result.eigenvectors =
      options.compute_eigenvectors ? Matrix(n, n) : Matrix();
  for (size_t j = 0; j < n; ++j) {
    result.eigenvalues[j] = work(order[j], order[j]);
    if (options.compute_eigenvectors) {
      for (size_t i = 0; i < n; ++i) result.eigenvectors(i, j) = vectors(i, order[j]);
    }
  }
  result.sweeps = sweep;
  return result;
}

}  // namespace linalg
}  // namespace frapp
