#include "frapp/linalg/lu.h"

#include <cmath>

namespace frapp {
namespace linalg {

StatusOr<LuDecomposition> LuDecomposition::Compute(const Matrix& a, double pivot_tol) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("LU requires a square matrix");
  }
  const size_t n = a.rows();
  if (n == 0) return Status::InvalidArgument("LU of empty matrix");

  Matrix lu = a;
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  for (size_t k = 0; k < n; ++k) {
    // Partial pivoting: bring the largest remaining entry of column k to the
    // diagonal for numerical stability.
    size_t pivot_row = k;
    double pivot_mag = std::fabs(lu(k, k));
    for (size_t i = k + 1; i < n; ++i) {
      const double mag = std::fabs(lu(i, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot_row = i;
      }
    }
    if (pivot_mag < pivot_tol) {
      return Status::NumericalError("singular matrix in LU (pivot " +
                                    std::to_string(pivot_mag) + " at step " +
                                    std::to_string(k) + ")");
    }
    if (pivot_row != k) {
      for (size_t j = 0; j < n; ++j) std::swap(lu(k, j), lu(pivot_row, j));
      std::swap(perm[k], perm[pivot_row]);
      sign = -sign;
    }
    const double inv_pivot = 1.0 / lu(k, k);
    for (size_t i = k + 1; i < n; ++i) {
      const double factor = lu(i, k) * inv_pivot;
      lu(i, k) = factor;
      if (factor == 0.0) continue;
      for (size_t j = k + 1; j < n; ++j) lu(i, j) -= factor * lu(k, j);
    }
  }
  return LuDecomposition(std::move(lu), std::move(perm), sign);
}

StatusOr<Vector> LuDecomposition::Solve(const Vector& b) const {
  const size_t n = dimension();
  if (b.size() != n) {
    return Status::InvalidArgument("rhs dimension mismatch in LU solve");
  }
  Vector x(n);
  // Forward substitution with permuted rhs: L y = P b.
  for (size_t i = 0; i < n; ++i) {
    double s = b[permutation_[i]];
    for (size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Back substitution: U x = y.
  for (size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

StatusOr<Matrix> LuDecomposition::Inverse() const {
  const size_t n = dimension();
  Matrix inv(n, n);
  Vector e(n);
  for (size_t j = 0; j < n; ++j) {
    e[j] = 1.0;
    FRAPP_ASSIGN_OR_RETURN(Vector col, Solve(e));
    for (size_t i = 0; i < n; ++i) inv(i, j) = col[i];
    e[j] = 0.0;
  }
  return inv;
}

double LuDecomposition::Determinant() const {
  double det = permutation_sign_;
  for (size_t i = 0; i < dimension(); ++i) det *= lu_(i, i);
  return det;
}

StatusOr<Vector> SolveLinearSystem(const Matrix& a, const Vector& b) {
  FRAPP_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecomposition::Compute(a));
  return lu.Solve(b);
}

StatusOr<Matrix> Inverse(const Matrix& a) {
  FRAPP_ASSIGN_OR_RETURN(LuDecomposition lu, LuDecomposition::Compute(a));
  return lu.Inverse();
}

}  // namespace linalg
}  // namespace frapp
