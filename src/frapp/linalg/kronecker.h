// Kronecker (tensor) products.
//
// Independent-column perturbation composes per-attribute transition matrices
// into a record-level matrix by Kronecker product; MASK's record-level matrix
// is the M_b-fold tensor power of a 2x2 flip matrix. These helpers build the
// dense products for analysis and apply tensor-structured solves without
// materializing the full matrix.

#ifndef FRAPP_LINALG_KRONECKER_H_
#define FRAPP_LINALG_KRONECKER_H_

#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/linalg/matrix.h"
#include "frapp/linalg/vector.h"

namespace frapp {
namespace linalg {

/// Dense Kronecker product a (x) b.
Matrix KroneckerProduct(const Matrix& a, const Matrix& b);

/// Dense Kronecker product of a list of square factors, left to right.
Matrix KroneckerProduct(const std::vector<Matrix>& factors);

/// Applies (F_1 (x) ... (x) F_k) x without materializing the product.
/// Each factor must be square; the product of factor dimensions must equal
/// x.size(). Index convention: the FIRST factor varies slowest (row-major /
/// mixed-radix with factor 1 as the most significant digit).
StatusOr<Vector> KroneckerMatVec(const std::vector<Matrix>& factors, const Vector& x);

/// Solves (F_1 (x) ... (x) F_k) z = x by applying per-factor inverses,
/// i.e. z = (F_1^{-1} (x) ... (x) F_k^{-1}) x. O(sum_i n_i * prod n) instead
/// of O((prod n)^2).
StatusOr<Vector> KroneckerSolve(const std::vector<Matrix>& factors, const Vector& x);

}  // namespace linalg
}  // namespace frapp

#endif  // FRAPP_LINALG_KRONECKER_H_
