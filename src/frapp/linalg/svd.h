// One-sided Jacobi SVD (singular values only). Condition numbers of
// NON-symmetric perturbation matrices (e.g. Cut-and-Paste partial-support
// matrices) are spectral: sigma_max / sigma_min.

#ifndef FRAPP_LINALG_SVD_H_
#define FRAPP_LINALG_SVD_H_

#include "frapp/common/statusor.h"
#include "frapp/linalg/matrix.h"
#include "frapp/linalg/vector.h"

namespace frapp {
namespace linalg {

/// Computes the singular values of `a` (rows >= cols or not; the matrix is
/// transposed internally when wide) in descending order, via one-sided Jacobi
/// orthogonalization of the columns.
StatusOr<Vector> SingularValues(const Matrix& a, double tolerance = 1e-12,
                                int max_sweeps = 100);

}  // namespace linalg
}  // namespace frapp

#endif  // FRAPP_LINALG_SVD_H_
