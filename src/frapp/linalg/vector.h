// Dense real vector used by the reconstruction and analysis code paths.

#ifndef FRAPP_LINALG_VECTOR_H_
#define FRAPP_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "frapp/common/check.h"

namespace frapp {
namespace linalg {

/// A dense vector of doubles with the handful of operations the library
/// needs. Element access is unchecked via operator[]; At() checks bounds.
class Vector {
 public:
  Vector() = default;

  /// Zero vector of dimension `n`.
  explicit Vector(size_t n) : data_(n, 0.0) {}

  /// Vector of dimension `n` filled with `value`.
  Vector(size_t n, double value) : data_(n, value) {}

  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Adopts an existing buffer.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double operator[](size_t i) const { return data_[i]; }
  double& operator[](size_t i) { return data_[i]; }

  double At(size_t i) const {
    FRAPP_CHECK_LT(i, data_.size());
    return data_[i];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  double* begin() { return data_.data(); }
  double* end() { return data_.data() + data_.size(); }
  const double* begin() const { return data_.data(); }
  const double* end() const { return data_.data() + data_.size(); }

  /// Sum of all entries.
  double Sum() const;

  /// Euclidean (L2) norm.
  double Norm2() const;

  /// L1 norm.
  double Norm1() const;

  /// Largest absolute entry; 0 for the empty vector.
  double NormInf() const;

  /// Dot product. Dimensions must agree.
  double Dot(const Vector& other) const;

  /// In-place scaling by `s`.
  void Scale(double s);

  /// this += s * other. Dimensions must agree.
  void Axpy(double s, const Vector& other);

  Vector operator+(const Vector& other) const;
  Vector operator-(const Vector& other) const;
  Vector operator*(double s) const;

  /// "[a, b, c]" with full precision, for diagnostics.
  std::string ToString() const;

 private:
  std::vector<double> data_;
};

}  // namespace linalg
}  // namespace frapp

#endif  // FRAPP_LINALG_VECTOR_H_
