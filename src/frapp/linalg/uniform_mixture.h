// Structured matrices of the form  M = a*I + b*J  (J = all-ones), n x n.
//
// Every gamma-diagonal matrix in the paper is of this form: diagonal entries
// a + b, off-diagonal entries b. The structure yields O(1) eigenvalues, O(n)
// solves (Sherman-Morrison), and a closed-form inverse, which is what makes
// FRAPP reconstruction cheap even for joint domains with thousands of values.

#ifndef FRAPP_LINALG_UNIFORM_MIXTURE_H_
#define FRAPP_LINALG_UNIFORM_MIXTURE_H_

#include <cstddef>

#include "frapp/common/statusor.h"
#include "frapp/linalg/matrix.h"
#include "frapp/linalg/vector.h"

namespace frapp {
namespace linalg {

/// M = a*I + b*J over dimension n. Immutable value type.
class UniformMixtureMatrix {
 public:
  /// Builds from the identity coefficient `a` and all-ones coefficient `b`.
  UniformMixtureMatrix(size_t n, double a, double b) : n_(n), a_(a), b_(b) {
    FRAPP_CHECK_GT(n, 0u);
  }

  /// Builds from the diagonal value `d` and off-diagonal value `o`
  /// (a = d - o, b = o); this matches the gamma-diagonal presentation.
  static UniformMixtureMatrix FromDiagonalOffDiagonal(size_t n, double d, double o) {
    return UniformMixtureMatrix(n, d - o, o);
  }

  size_t dimension() const { return n_; }
  double identity_coefficient() const { return a_; }
  double ones_coefficient() const { return b_; }
  double DiagonalValue() const { return a_ + b_; }
  double OffDiagonalValue() const { return b_; }

  /// Eigenvalues: a + n*b (eigenvector: the all-ones direction) and a with
  /// multiplicity n-1 (any direction orthogonal to all-ones).
  double BulkEigenvalue() const { return a_; }
  double OnesEigenvalue() const { return a_ + static_cast<double>(n_) * b_; }

  /// lambda_max / lambda_min; NumericalError when an eigenvalue is <= 0.
  StatusOr<double> ConditionNumber() const;

  /// y = M x in O(n).
  Vector MatVec(const Vector& x) const;

  /// Solves M x = y in O(n) via Sherman-Morrison:
  ///   x = (y - (b / (a + n b)) * sum(y) * 1) / a.
  /// NumericalError when the matrix is singular (a == 0 or a + n b == 0).
  StatusOr<Vector> Solve(const Vector& y) const;

  /// The inverse, which is again of the form a' I + b' J.
  StatusOr<UniformMixtureMatrix> Inverse() const;

  /// Materializes the dense matrix (tests, small-n diagnostics only).
  Matrix ToDense() const;

  /// True when columns sum to 1 and entries are non-negative.
  bool IsColumnStochastic(double tol = 1e-12) const;

  /// max entry / min entry: the amplification ratio that the privacy
  /// constraint (paper Eq. 2) bounds by gamma. Requires positive entries.
  StatusOr<double> AmplificationRatio() const;

 private:
  size_t n_;
  double a_;
  double b_;
};

}  // namespace linalg
}  // namespace frapp

#endif  // FRAPP_LINALG_UNIFORM_MIXTURE_H_
