#include "frapp/linalg/kronecker.h"

#include "frapp/linalg/lu.h"

namespace frapp {
namespace linalg {

Matrix KroneckerProduct(const Matrix& a, const Matrix& b) {
  Matrix out(a.rows() * b.rows(), a.cols() * b.cols());
  for (size_t ia = 0; ia < a.rows(); ++ia) {
    for (size_t ja = 0; ja < a.cols(); ++ja) {
      const double av = a(ia, ja);
      if (av == 0.0) continue;
      for (size_t ib = 0; ib < b.rows(); ++ib) {
        for (size_t jb = 0; jb < b.cols(); ++jb) {
          out(ia * b.rows() + ib, ja * b.cols() + jb) = av * b(ib, jb);
        }
      }
    }
  }
  return out;
}

Matrix KroneckerProduct(const std::vector<Matrix>& factors) {
  FRAPP_CHECK(!factors.empty());
  Matrix out = factors[0];
  for (size_t i = 1; i < factors.size(); ++i) out = KroneckerProduct(out, factors[i]);
  return out;
}

namespace {

// Applies factor j (or its inverse action via a pre-solved form) along mode j
// of the mixed-radix tensor stored in `x`. `apply` maps (factor, slice_in) to
// slice_out for one n_j-length fiber.
StatusOr<Vector> ApplyModewise(
    const std::vector<Matrix>& factors, const Vector& x,
    const std::vector<const Matrix*>& effective) {
  size_t total = 1;
  for (const Matrix& f : factors) {
    if (!f.IsSquare() || f.rows() == 0) {
      return Status::InvalidArgument("Kronecker factors must be square and non-empty");
    }
    total *= f.rows();
  }
  if (x.size() != total) {
    return Status::InvalidArgument("Kronecker operand dimension mismatch");
  }

  Vector cur = x;
  size_t inner = total;  // product of dims j..k before processing factor j
  size_t outer = 1;      // product of dims before factor j
  for (size_t j = 0; j < factors.size(); ++j) {
    const Matrix& f = *effective[j];
    const size_t nj = f.rows();
    inner /= nj;
    Vector next(total);
    for (size_t o = 0; o < outer; ++o) {
      const size_t base = o * nj * inner;
      for (size_t in = 0; in < inner; ++in) {
        // One fiber along mode j: entries base + c*inner + in, c = 0..nj-1.
        for (size_t r = 0; r < nj; ++r) {
          double s = 0.0;
          for (size_t c = 0; c < nj; ++c) {
            s += f(r, c) * cur[base + c * inner + in];
          }
          next[base + r * inner + in] = s;
        }
      }
    }
    cur = std::move(next);
    outer *= nj;
  }
  return cur;
}

}  // namespace

StatusOr<Vector> KroneckerMatVec(const std::vector<Matrix>& factors, const Vector& x) {
  if (factors.empty()) return Status::InvalidArgument("no Kronecker factors");
  std::vector<const Matrix*> effective;
  effective.reserve(factors.size());
  for (const Matrix& f : factors) effective.push_back(&f);
  return ApplyModewise(factors, x, effective);
}

StatusOr<Vector> KroneckerSolve(const std::vector<Matrix>& factors, const Vector& x) {
  if (factors.empty()) return Status::InvalidArgument("no Kronecker factors");
  std::vector<Matrix> inverses;
  inverses.reserve(factors.size());
  for (const Matrix& f : factors) {
    FRAPP_ASSIGN_OR_RETURN(Matrix inv, Inverse(f));
    inverses.push_back(std::move(inv));
  }
  std::vector<const Matrix*> effective;
  effective.reserve(inverses.size());
  for (const Matrix& f : inverses) effective.push_back(&f);
  return ApplyModewise(factors, x, effective);
}

}  // namespace linalg
}  // namespace frapp
