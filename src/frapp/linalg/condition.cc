#include "frapp/linalg/condition.h"

#include <cmath>

#include "frapp/linalg/jacobi_eigen.h"
#include "frapp/linalg/svd.h"

namespace frapp {
namespace linalg {

StatusOr<double> SymmetricConditionNumber(const Matrix& a) {
  JacobiOptions options;
  options.compute_eigenvectors = false;
  FRAPP_ASSIGN_OR_RETURN(SymmetricEigenResult eig, SymmetricEigen(a, options));
  const double lambda_min = eig.eigenvalues[0];
  const double lambda_max = eig.eigenvalues[eig.eigenvalues.size() - 1];
  if (lambda_min <= 0.0) {
    return Status::NumericalError(
        "matrix is not positive definite (lambda_min = " +
        std::to_string(lambda_min) + ")");
  }
  return lambda_max / lambda_min;
}

StatusOr<double> SpectralConditionNumber(const Matrix& a) {
  FRAPP_ASSIGN_OR_RETURN(Vector sigma, SingularValues(a));
  const double sigma_max = sigma[0];
  const double sigma_min = sigma[sigma.size() - 1];
  if (sigma_min <= 0.0 || !std::isfinite(sigma_max / sigma_min)) {
    return Status::NumericalError("matrix is singular; condition number infinite");
  }
  return sigma_max / sigma_min;
}

StatusOr<double> ConditionNumber(const Matrix& a) {
  if (!a.IsSquare()) {
    return Status::InvalidArgument("condition number requires a square matrix");
  }
  if (a.IsSymmetric(1e-9 * std::max(1.0, a.MaxAbs()))) {
    StatusOr<double> sym = SymmetricConditionNumber(a);
    // Symmetric indefinite matrices fall back to singular values.
    if (sym.ok()) return sym;
  }
  return SpectralConditionNumber(a);
}

}  // namespace linalg
}  // namespace frapp
