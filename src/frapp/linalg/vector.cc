#include "frapp/linalg/vector.h"

#include <cmath>
#include <sstream>

namespace frapp {
namespace linalg {

double Vector::Sum() const {
  double s = 0.0;
  for (double v : data_) s += v;
  return s;
}

double Vector::Norm2() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Vector::Norm1() const {
  double s = 0.0;
  for (double v : data_) s += std::fabs(v);
  return s;
}

double Vector::NormInf() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Vector::Dot(const Vector& other) const {
  FRAPP_CHECK_EQ(size(), other.size());
  double s = 0.0;
  for (size_t i = 0; i < size(); ++i) s += data_[i] * other[i];
  return s;
}

void Vector::Scale(double s) {
  for (double& v : data_) v *= s;
}

void Vector::Axpy(double s, const Vector& other) {
  FRAPP_CHECK_EQ(size(), other.size());
  for (size_t i = 0; i < size(); ++i) data_[i] += s * other[i];
}

Vector Vector::operator+(const Vector& other) const {
  FRAPP_CHECK_EQ(size(), other.size());
  Vector out(size());
  for (size_t i = 0; i < size(); ++i) out[i] = data_[i] + other[i];
  return out;
}

Vector Vector::operator-(const Vector& other) const {
  FRAPP_CHECK_EQ(size(), other.size());
  Vector out(size());
  for (size_t i = 0; i < size(); ++i) out[i] = data_[i] - other[i];
  return out;
}

Vector Vector::operator*(double s) const {
  Vector out(size());
  for (size_t i = 0; i < size(); ++i) out[i] = data_[i] * s;
  return out;
}

std::string Vector::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < size(); ++i) {
    if (i > 0) os << ", ";
    os << data_[i];
  }
  os << "]";
  return os.str();
}

}  // namespace linalg
}  // namespace frapp
