// LU decomposition with partial pivoting: the general-purpose solver behind
// distribution reconstruction (paper Eq. 8, X_hat = A^{-1} Y) whenever a
// perturbation matrix has no exploitable structure.

#ifndef FRAPP_LINALG_LU_H_
#define FRAPP_LINALG_LU_H_

#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/linalg/matrix.h"
#include "frapp/linalg/vector.h"

namespace frapp {
namespace linalg {

/// Factorization PA = LU of a square matrix, computed once and reusable for
/// many right-hand sides.
class LuDecomposition {
 public:
  /// Factorizes `a`. Returns NumericalError for singular (or numerically
  /// singular) input; `pivot_tol` is the smallest acceptable pivot magnitude.
  static StatusOr<LuDecomposition> Compute(const Matrix& a, double pivot_tol = 1e-13);

  /// Solves A x = b for one right-hand side.
  StatusOr<Vector> Solve(const Vector& b) const;

  /// Computes A^{-1} column by column.
  StatusOr<Matrix> Inverse() const;

  /// det(A) = sign(P) * prod(diag(U)).
  double Determinant() const;

  size_t dimension() const { return lu_.rows(); }

 private:
  LuDecomposition(Matrix lu, std::vector<size_t> permutation, int permutation_sign)
      : lu_(std::move(lu)),
        permutation_(std::move(permutation)),
        permutation_sign_(permutation_sign) {}

  Matrix lu_;                       // L (unit diagonal, below) and U (on/above).
  std::vector<size_t> permutation_; // Row permutation applied to inputs.
  int permutation_sign_;
};

/// One-shot convenience: solves a x = b.
StatusOr<Vector> SolveLinearSystem(const Matrix& a, const Vector& b);

/// One-shot convenience: inverts `a`.
StatusOr<Matrix> Inverse(const Matrix& a);

}  // namespace linalg
}  // namespace frapp

#endif  // FRAPP_LINALG_LU_H_
