#include "frapp/linalg/svd.h"

#include <algorithm>
#include <cmath>

namespace frapp {
namespace linalg {

StatusOr<Vector> SingularValues(const Matrix& a, double tolerance, int max_sweeps) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("SVD of empty matrix");
  }
  // One-sided Jacobi works on columns; make the working copy tall.
  Matrix work = (a.rows() >= a.cols()) ? a : a.Transposed();
  const size_t m = work.rows();
  const size_t n = work.cols();

  // Rotate pairs of columns until all pairs are mutually orthogonal.
  bool converged = false;
  for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
    converged = true;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (size_t i = 0; i < m; ++i) {
          const double wip = work(i, p);
          const double wiq = work(i, q);
          alpha += wip * wip;
          beta += wiq * wiq;
          gamma += wip * wiq;
        }
        if (std::fabs(gamma) <= tolerance * std::sqrt(alpha * beta) ||
            gamma == 0.0) {
          continue;
        }
        converged = false;
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = ((zeta >= 0.0) ? 1.0 : -1.0) /
                         (std::fabs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (size_t i = 0; i < m; ++i) {
          const double wip = work(i, p);
          const double wiq = work(i, q);
          work(i, p) = c * wip - s * wiq;
          work(i, q) = s * wip + c * wiq;
        }
      }
    }
  }
  if (!converged) {
    return Status::NumericalError("one-sided Jacobi SVD did not converge");
  }

  Vector sigma(n);
  for (size_t j = 0; j < n; ++j) {
    double s = 0.0;
    for (size_t i = 0; i < m; ++i) s += work(i, j) * work(i, j);
    sigma[j] = std::sqrt(s);
  }
  std::sort(sigma.begin(), sigma.end(), std::greater<double>());
  return sigma;
}

}  // namespace linalg
}  // namespace frapp
