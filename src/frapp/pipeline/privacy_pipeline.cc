#include "frapp/pipeline/privacy_pipeline.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "frapp/common/clock.h"
#include "frapp/common/parallel.h"
#include "frapp/data/sharded_boolean_vertical_index.h"
#include "frapp/mining/sharded_vertical_index.h"
#include "frapp/mining/vertical_index.h"
#include "frapp/pipeline/prefetching_table_source.h"

namespace frapp {
namespace pipeline {

namespace {

/// Raises `peak` to at least `value` (relaxed CAS loop).
void RaiseToAtLeast(std::atomic<size_t>& peak, size_t value) {
  size_t observed = peak.load(std::memory_order_relaxed);
  while (observed < value &&
         !peak.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

StatusOr<PipelineResult> PrivacyPipeline::Run(
    core::Mechanism& mechanism, const data::CategoricalTable& original) const {
  InMemoryTableSource source(original, options_.num_shards);
  return Run(mechanism, source);
}

StatusOr<PipelineResult> PrivacyPipeline::Run(core::Mechanism& mechanism,
                                              TableSource& source) const {
  // One-way enable, applied before any pool worker spawns for this run; see
  // the PipelineOptions::pin_threads doc for the stickiness caveat.
  if (options_.pin_threads) {
    common::ThreadPool::Shared().SetPinPhysicalCores(true);
  }
  if (options_.prefetch_source) {
    // Wrap the caller's source in the parser-thread decorator for the
    // duration of this run. Order is preserved, so the result is
    // bit-identical to the unprefetched pull — only the parse/compute
    // overlap (and the stats describing it) change.
    PrefetchingTableSource prefetched(source, options_.prefetch_shards,
                                      options_.prefetch_parsers);
    PipelineOptions inner_options = options_;
    inner_options.prefetch_source = false;
    FRAPP_ASSIGN_OR_RETURN(
        PipelineResult result,
        PrivacyPipeline(inner_options).Run(mechanism, prefetched));
    result.stats.producer_parse_nanos =
        prefetched.producer_stats().parse_nanos;
    return result;
  }
  if (!mechanism.SupportsShardStreaming()) {
    return Status::Unimplemented(
        mechanism.name() +
        " does not implement the shard-streaming contract; every pipeline "
        "mechanism must (there is no monolithic fallback)");
  }
  PipelineResult result;
  const bool boolean_shards =
      mechanism.shard_kind() == core::Mechanism::ShardKind::kBoolean;
  const size_t bytes_per_row = boolean_shards
                                   ? sizeof(uint64_t)
                                   : source.schema().num_attributes();

  // Stream the source in batches of up to `batch` shards: shards are pulled
  // sequentially (sources are single-threaded parsers/generators), then each
  // batch fans perturb + index out over the workers. A task perturbs its
  // shard, transposes it into a local vertical index, and drops both the
  // perturbed rows and (for streaming sources) the input buffer before
  // returning, so at most one batch of rows is ever alive at once. Every
  // task is a pure function of its shard's global position (global
  // seeded-chunk RNG streams) and counts merge as integer sums, so the
  // result is bit-identical for any source kind, shard count and thread
  // count.
  std::vector<mining::VerticalIndex> cat_indexes;
  std::vector<data::BooleanVerticalIndex> bool_indexes;
  std::atomic<size_t> inflight_bytes{0};
  std::atomic<size_t> peak_bytes{0};
  const size_t batch = std::max<size_t>(
      1, common::ResolveThreadCount(options_.num_threads));
  std::vector<PulledShard> pending;
  pending.reserve(batch);
  bool exhausted = false;
  while (!exhausted) {
    pending.clear();
    while (pending.size() < batch) {
      PulledShard shard;
      const uint64_t pull_start = common::NowNanos();
      StatusOr<bool> more = source.NextShard(&shard);
      result.stats.source_wait_nanos += common::NowNanos() - pull_start;
      FRAPP_RETURN_IF_ERROR(more.status());
      if (!*more) {
        exhausted = true;
        break;
      }
      if (shard.view.size() == 0) continue;
      pending.push_back(std::move(shard));
    }
    if (pending.empty()) break;

    const size_t base = boolean_shards ? bool_indexes.size() : cat_indexes.size();
    if (boolean_shards) {
      bool_indexes.resize(base + pending.size());
    } else {
      cat_indexes.resize(base + pending.size());
    }
    std::vector<Status> statuses(pending.size());
    // With several shards in the batch the outer dispatch occupies the
    // pool's single job slot, so nested parallel calls would run inline
    // anyway — give shard tasks one thread. A one-shard batch runs inline at
    // the outer level instead, so the full thread budget flows into the
    // shard's own chunk-parallel perturbation and index build.
    const size_t inner_threads =
        pending.size() == 1 ? options_.num_threads : 1;
    common::ParallelForChunks(
        pending.size(), options_.num_threads, [&](size_t i) {
          PulledShard& shard = pending[i];
          const size_t shard_bytes = shard.view.size() * bytes_per_row;
          if (boolean_shards) {
            StatusOr<data::BooleanTable> perturbed = mechanism.PerturbBooleanShard(
                shard.view, options_.perturb_seed, inner_threads);
            shard.owned.reset();  // source buffer dropped once perturbed
            if (!perturbed.ok()) {
              statuses[i] = perturbed.status();
              return;
            }
            RaiseToAtLeast(peak_bytes,
                           inflight_bytes.fetch_add(shard_bytes,
                                                    std::memory_order_relaxed) +
                               shard_bytes);
            bool_indexes[base + i] = data::BooleanVerticalIndex(*perturbed);
          } else {
            StatusOr<data::CategoricalTable> perturbed = mechanism.PerturbShard(
                shard.view, options_.perturb_seed, inner_threads);
            shard.owned.reset();
            if (!perturbed.ok()) {
              statuses[i] = perturbed.status();
              return;
            }
            RaiseToAtLeast(peak_bytes,
                           inflight_bytes.fetch_add(shard_bytes,
                                                    std::memory_order_relaxed) +
                               shard_bytes);
            cat_indexes[base + i] =
                mining::VerticalIndex::Build(*perturbed, inner_threads);
          }  // the perturbed shard rows are dropped here
          inflight_bytes.fetch_sub(shard_bytes, std::memory_order_relaxed);
        });
    for (size_t i = 0; i < pending.size(); ++i) {
      FRAPP_RETURN_IF_ERROR(statuses[i]);
      result.stats.max_shard_rows =
          std::max(result.stats.max_shard_rows, pending[i].view.size());
      result.stats.total_rows += pending[i].view.size();
      ++result.stats.num_shards;
    }
  }

  std::unique_ptr<mining::SupportEstimator> estimator;
  if (boolean_shards) {
    FRAPP_ASSIGN_OR_RETURN(
        estimator, mechanism.MakeShardedBooleanEstimator(
                       data::ShardedBooleanVerticalIndex::FromShards(
                           std::move(bool_indexes)),
                       options_.num_threads));
  } else {
    FRAPP_ASSIGN_OR_RETURN(
        estimator, mechanism.MakeShardedEstimator(
                       mining::ShardedVerticalIndex::FromShards(
                           std::move(cat_indexes)),
                       options_.num_threads));
  }
  FRAPP_ASSIGN_OR_RETURN(
      result.mined, mining::MineFrequentItemsets(source.schema(), *estimator,
                                                 options_.mining));
  result.stats.peak_inflight_perturbed_bytes =
      peak_bytes.load(std::memory_order_relaxed);
  return result;
}

}  // namespace pipeline
}  // namespace frapp
