#include "frapp/pipeline/privacy_pipeline.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>
#include <vector>

#include "frapp/common/parallel.h"
#include "frapp/mining/sharded_vertical_index.h"
#include "frapp/mining/vertical_index.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace pipeline {

namespace {

/// Raises `peak` to at least `value` (relaxed CAS loop).
void RaiseToAtLeast(std::atomic<size_t>& peak, size_t value) {
  size_t observed = peak.load(std::memory_order_relaxed);
  while (observed < value &&
         !peak.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

StatusOr<PipelineResult> PrivacyPipeline::Run(
    core::Mechanism& mechanism, const data::CategoricalTable& original) const {
  PipelineResult result;

  if (!mechanism.SupportsShardStreaming()) {
    // Monolithic fallback: the classic Prepare() path, whole perturbed
    // database in memory.
    random::Pcg64 rng(options_.perturb_seed);
    FRAPP_RETURN_IF_ERROR(mechanism.Prepare(original, rng));
    FRAPP_ASSIGN_OR_RETURN(
        result.mined,
        mining::MineFrequentItemsets(original.schema(), mechanism.estimator(),
                                     options_.mining));
    result.stats.num_shards = 1;
    result.stats.max_shard_rows = original.num_rows();
    // The mechanism owns its perturbed representation (e.g. a one-hot
    // BooleanTable for MASK/C&P); its footprint is not observable here.
    result.stats.peak_inflight_perturbed_bytes = 0;
    result.stats.shard_streamed = false;
    return result;
  }

  const data::ShardedTable sharded =
      data::ShardedTable::Create(original, options_.num_shards);
  const std::vector<data::RowRange>& plan = sharded.shards();
  const size_t bytes_per_row = original.num_attributes();

  // Stream the shards: each task perturbs its shard, transposes it into a
  // local vertical index, and drops the perturbed rows before returning, so
  // at most `workers` shards of rows are ever alive at once. Every task is a
  // pure function of its shard index (global seeded-chunk RNG streams), so
  // the concatenated result is bit-identical at any shard/thread count.
  std::vector<mining::VerticalIndex> shard_indexes(plan.size());
  std::vector<Status> shard_status(plan.size());
  std::atomic<size_t> inflight_bytes{0};
  std::atomic<size_t> peak_bytes{0};
  // With several shards the outer dispatch occupies the pool's single job
  // slot, so nested parallel calls would run inline anyway — give shard
  // tasks one thread. The one-shard case runs inline at the outer level
  // instead, so the full thread budget flows into the shard's own
  // chunk-parallel perturbation and index build.
  const size_t inner_threads = plan.size() == 1 ? options_.num_threads : 1;
  common::ParallelForChunks(plan.size(), options_.num_threads, [&](size_t s) {
    const size_t shard_bytes = plan[s].size() * bytes_per_row;
    {
      StatusOr<data::CategoricalTable> shard = mechanism.PerturbShard(
          original, plan[s], options_.perturb_seed, inner_threads);
      if (!shard.ok()) {
        shard_status[s] = shard.status();
        return;
      }
      RaiseToAtLeast(peak_bytes,
                     inflight_bytes.fetch_add(shard_bytes,
                                              std::memory_order_relaxed) +
                         shard_bytes);
      shard_indexes[s] = mining::VerticalIndex::Build(*shard, inner_threads);
    }  // the perturbed shard rows are dropped here, before the next shard
    inflight_bytes.fetch_sub(shard_bytes, std::memory_order_relaxed);
  });
  for (const Status& status : shard_status) {
    FRAPP_RETURN_IF_ERROR(status);
  }

  FRAPP_ASSIGN_OR_RETURN(
      std::unique_ptr<mining::SupportEstimator> estimator,
      mechanism.MakeShardedEstimator(
          mining::ShardedVerticalIndex::FromShards(std::move(shard_indexes)),
          options_.num_threads));
  FRAPP_ASSIGN_OR_RETURN(
      result.mined, mining::MineFrequentItemsets(original.schema(), *estimator,
                                                 options_.mining));

  result.stats.num_shards = plan.size();
  result.stats.max_shard_rows = sharded.MaxShardRows();
  result.stats.peak_inflight_perturbed_bytes =
      peak_bytes.load(std::memory_order_relaxed);
  result.stats.shard_streamed = true;
  return result;
}

}  // namespace pipeline
}  // namespace frapp
