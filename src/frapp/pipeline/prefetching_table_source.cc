#include "frapp/pipeline/prefetching_table_source.h"

#include <algorithm>
#include <utility>

#include "frapp/common/clock.h"
#include "frapp/common/cpuinfo.h"

namespace frapp {
namespace pipeline {

PrefetchingTableSource::PrefetchingTableSource(TableSource& inner,
                                               size_t max_queued_shards,
                                               size_t num_parsers)
    : inner_(&inner),
      schema_(&inner.schema()),
      total_rows_(inner.TotalRows()) {
  size_t parsers = num_parsers == 0
                       ? common::GetCpuInfo().physical_cores
                       : num_parsers;
  // Without a raw/decode split the inner source is single-producer all the
  // way through — extra parsers could only serialize on it.
  two_phase_ = inner.SupportsParallelDecode() && parsers > 1;
  if (!two_phase_) parsers = 1;
  capacity_ = std::max(std::max<size_t>(1, max_queued_shards), parsers);
  stats_.num_parsers = parsers;
  parsers_.reserve(parsers);
  for (size_t p = 0; p < parsers; ++p) {
    parsers_.emplace_back([this] { ParserLoop(); });
  }
}

PrefetchingTableSource::~PrefetchingTableSource() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  can_produce_.notify_all();
  for (std::thread& parser : parsers_) parser.join();
}

void PrefetchingTableSource::ParserLoop() {
  while (true) {
    // Gate: wait for queue space (or shutdown / end of stream). ready_ may
    // transiently exceed capacity_ by the in-decode shards — only CLAIMS are
    // gated — which is what lets the reorder buffer always absorb the
    // lowest outstanding sequence and keeps the consumer from deadlocking
    // behind a full queue of later sequences.
    {
      std::unique_lock<std::mutex> lock(mu_);
      can_produce_.wait(lock, [&] {
        return stop_ || end_seq_.has_value() || ready_.size() < capacity_;
      });
      if (stop_ || end_seq_.has_value()) return;
    }

    // Serial half: claim the next sequence and pull it from the inner
    // source. Two-phase mode pulls only the RAW bytes here; single-parser
    // mode does the whole parse (nothing to overlap against within the
    // source — overlap happens against the consumer).
    size_t seq = 0;
    data::RawCsvShard raw;
    PulledShard pulled;
    StatusOr<bool> more = false;
    uint64_t serial_nanos = 0;
    {
      std::lock_guard<std::mutex> source_lock(source_mu_);
      if (source_done_) return;  // no claims left; delivery is consumer-side
      seq = claim_seq_++;
      const uint64_t t0 = common::NowNanos();
      more = two_phase_ ? inner_->NextRawShard(&raw)
                        : inner_->NextShard(&pulled);
      serial_nanos = common::NowNanos() - t0;
      if (!more.ok() || !*more) source_done_ = true;
    }
    if (!more.ok() || !*more) {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.parse_nanos += serial_nanos;
      // The discovering claim has the highest sequence so far (claims are
      // ordered and source_done_ stops later ones); only an earlier decode
      // error may lower end_seq_ afterwards.
      if (!end_seq_.has_value() || seq < *end_seq_) {
        end_seq_ = seq;
        status_ = more.ok() ? Status::OK() : more.status();
      }
      can_consume_.notify_all();
      can_produce_.notify_all();
      return;
    }

    // Parallel half: decode outside every lock — this is the work the
    // parsers overlap with each other and with the consumer's compute.
    uint64_t decode_nanos = 0;
    Status decode_status;
    if (two_phase_) {
      const uint64_t t0 = common::NowNanos();
      StatusOr<PulledShard> decoded = inner_->DecodeRawShard(raw);
      decode_nanos = common::NowNanos() - t0;
      if (decoded.ok()) {
        pulled = std::move(decoded).value();
      } else {
        decode_status = decoded.status();
      }
    }

    bool ended = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.parse_nanos += serial_nanos + decode_nanos;
      if (!decode_status.ok()) {
        // A decode error ends the stream at ITS sequence: shards before it
        // still deliver, later ones (decoded or not) are dropped.
        if (!end_seq_.has_value() || seq < *end_seq_) {
          end_seq_ = seq;
          status_ = decode_status;
        }
        ended = true;
      } else {
        ++stats_.shards_produced;
        ready_.emplace(seq, std::move(pulled));
      }
    }
    can_consume_.notify_all();
    if (ended) {
      can_produce_.notify_all();  // release parsers parked on the gate
      return;
    }
  }
}

StatusOr<bool> PrefetchingTableSource::NextShard(PulledShard* out) {
  std::unique_lock<std::mutex> lock(mu_);
  can_consume_.wait(lock, [&] {
    return ready_.count(deliver_seq_) != 0 ||
           (end_seq_.has_value() && deliver_seq_ >= *end_seq_);
  });
  const auto it = ready_.find(deliver_seq_);
  if (it != ready_.end()) {
    *out = std::move(it->second);
    ready_.erase(it);
    ++deliver_seq_;
    lock.unlock();
    can_produce_.notify_all();
    return true;
  }
  // Drained past the end: clean exhaustion or the earliest sticky error.
  if (!status_.ok()) return status_;
  return false;
}

PrefetchingTableSource::ProducerStats PrefetchingTableSource::producer_stats()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pipeline
}  // namespace frapp
