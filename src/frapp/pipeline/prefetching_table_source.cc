#include "frapp/pipeline/prefetching_table_source.h"

#include <algorithm>
#include <utility>

#include "frapp/common/clock.h"

namespace frapp {
namespace pipeline {

PrefetchingTableSource::PrefetchingTableSource(TableSource& inner,
                                               size_t max_queued_shards)
    : inner_(&inner),
      schema_(&inner.schema()),
      total_rows_(inner.TotalRows()),
      capacity_(std::max<size_t>(1, max_queued_shards)),
      producer_([this] { ProducerLoop(); }) {}

PrefetchingTableSource::~PrefetchingTableSource() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  can_produce_.notify_all();
  producer_.join();
}

void PrefetchingTableSource::ProducerLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      can_produce_.wait(lock,
                        [&] { return stop_ || queue_.size() < capacity_; });
      if (stop_) break;
    }
    // The inner pull runs OUTSIDE the lock: this is the parse/generate work
    // the decorator exists to overlap with the consumer's compute.
    PulledShard shard;
    const uint64_t t0 = common::NowNanos();
    StatusOr<bool> more = inner_->NextShard(&shard);
    const uint64_t elapsed = common::NowNanos() - t0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.parse_nanos += elapsed;
      if (!more.ok()) {
        status_ = more.status();
        done_ = true;
      } else if (!*more) {
        done_ = true;
      } else {
        ++stats_.shards_produced;
        queue_.push_back(std::move(shard));
      }
    }
    can_consume_.notify_one();
    if (done_) break;  // done_ only ever transitions false -> true
  }
  // A stop_ exit must still mark the stream done so a concurrent consumer
  // blocked in NextShard wakes up instead of hanging forever.
  {
    std::lock_guard<std::mutex> lock(mu_);
    done_ = true;
  }
  can_consume_.notify_all();
}

StatusOr<bool> PrefetchingTableSource::NextShard(PulledShard* out) {
  std::unique_lock<std::mutex> lock(mu_);
  can_consume_.wait(lock, [&] { return !queue_.empty() || done_; });
  if (!queue_.empty()) {
    *out = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    can_produce_.notify_one();
    return true;
  }
  // Drained: clean end or the producer's sticky error.
  if (!status_.ok()) return status_;
  return false;
}

PrefetchingTableSource::ProducerStats PrefetchingTableSource::producer_stats()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace pipeline
}  // namespace frapp
