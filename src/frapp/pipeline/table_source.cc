#include "frapp/pipeline/table_source.h"

#include <algorithm>
#include <utility>

namespace frapp {
namespace pipeline {

namespace {

Status ValidateRowsPerShard(size_t rows_per_shard) {
  if (rows_per_shard == 0 || rows_per_shard % data::kShardAlignmentRows != 0) {
    return Status::InvalidArgument(
        "rows_per_shard must be a positive multiple of the chunk quantum (" +
        std::to_string(data::kShardAlignmentRows) + ")");
  }
  return Status::OK();
}

}  // namespace

StatusOr<bool> InMemoryTableSource::NextShard(PulledShard* out) {
  if (next_ >= plan_.size()) return false;
  const data::RowRange& range = plan_[next_++];
  out->view = data::ShardView{table_, range, range.begin};
  out->owned.reset();
  return true;
}

Status InMemoryTableSource::SkipToRow(size_t row) {
  // Drop whole leading plan shards; a shard straddling `row` is still
  // yielded in full (the contract only forbids skipping past `row`).
  while (next_ < plan_.size() && plan_[next_].end <= row) ++next_;
  return Status::OK();
}

StatusOr<CsvTableSource> CsvTableSource::Open(
    const std::string& path, const data::CategoricalSchema& schema,
    size_t rows_per_shard) {
  FRAPP_RETURN_IF_ERROR(ValidateRowsPerShard(rows_per_shard));
  FRAPP_ASSIGN_OR_RETURN(data::ShardedCsvReader reader,
                         data::ShardedCsvReader::Open(path, schema));
  return CsvTableSource(std::move(reader), rows_per_shard);
}

StatusOr<bool> CsvTableSource::NextShard(PulledShard* out) {
  if (exhausted_) return false;
  const size_t global_begin = reader_.rows_read();
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable shard,
                         reader_.ReadShard(rows_per_shard_));
  if (shard.num_rows() == 0) {
    exhausted_ = true;
    return false;
  }
  // A short read means the file ended mid-shard; this is the stream's final
  // shard (allowed to end off the chunk grid).
  if (shard.num_rows() < rows_per_shard_) exhausted_ = true;
  auto buffer =
      std::make_shared<const data::CategoricalTable>(std::move(shard));
  out->view = data::ShardView{buffer.get(),
                              data::RowRange{0, buffer->num_rows()},
                              global_begin};
  out->owned = std::move(buffer);
  return true;
}

StatusOr<bool> CsvTableSource::NextRawShard(data::RawCsvShard* out) {
  if (exhausted_) return false;
  FRAPP_ASSIGN_OR_RETURN(data::RawCsvShard raw,
                         reader_.ReadRawShard(rows_per_shard_));
  if (raw.num_rows == 0) {
    exhausted_ = true;
    return false;
  }
  // A short read means the file ended mid-shard; this is the stream's final
  // shard (allowed to end off the chunk grid).
  if (raw.num_rows < rows_per_shard_) exhausted_ = true;
  *out = std::move(raw);
  return true;
}

StatusOr<PulledShard> CsvTableSource::DecodeRawShard(
    const data::RawCsvShard& raw) const {
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable shard,
                         data::ShardedCsvReader::DecodeRawShard(
                             raw, reader_.path(), reader_.schema()));
  auto buffer =
      std::make_shared<const data::CategoricalTable>(std::move(shard));
  PulledShard out;
  out.view = data::ShardView{buffer.get(),
                             data::RowRange{0, buffer->num_rows()},
                             raw.row_begin};
  out.owned = std::move(buffer);
  return out;
}

StatusOr<BinaryTableSource> BinaryTableSource::Open(
    const std::string& path, const data::CategoricalSchema& schema,
    size_t rows_per_shard) {
  FRAPP_RETURN_IF_ERROR(ValidateRowsPerShard(rows_per_shard));
  FRAPP_ASSIGN_OR_RETURN(data::BinaryShardReader reader,
                         data::BinaryShardReader::Open(path, schema));
  return BinaryTableSource(std::move(reader), rows_per_shard);
}

StatusOr<bool> BinaryTableSource::NextShard(PulledShard* out) {
  if (reader_.rows_read() >= reader_.total_rows()) return false;
  const size_t global_begin = reader_.rows_read();
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable shard,
                         reader_.ReadShard(rows_per_shard_));
  if (shard.num_rows() == 0) return false;
  auto buffer =
      std::make_shared<const data::CategoricalTable>(std::move(shard));
  out->view = data::ShardView{buffer.get(),
                              data::RowRange{0, buffer->num_rows()},
                              global_begin};
  out->owned = std::move(buffer);
  return true;
}

Status BinaryTableSource::SkipToRow(size_t row) {
  if (row % data::kShardAlignmentRows != 0) {
    return Status::InvalidArgument(
        "SkipToRow target must be a multiple of the chunk quantum (" +
        std::to_string(data::kShardAlignmentRows) + ")");
  }
  // Clamp to the file: skipping to or past the end just exhausts the
  // stream, mirroring what pull-and-drop would do.
  return reader_.SkipToRow(std::min(row, reader_.total_rows()));
}

StatusOr<SyntheticTableSource> SyntheticTableSource::Create(
    data::ChainGenerator generator, size_t total_rows, uint64_t seed,
    size_t rows_per_shard) {
  FRAPP_RETURN_IF_ERROR(ValidateRowsPerShard(rows_per_shard));
  return SyntheticTableSource(std::move(generator), total_rows, seed,
                              rows_per_shard);
}

StatusOr<bool> SyntheticTableSource::NextShard(PulledShard* out) {
  if (emitted_ >= total_rows_) return false;
  const size_t n = std::min(rows_per_shard_, total_rows_ - emitted_);
  FRAPP_ASSIGN_OR_RETURN(data::CategoricalTable shard,
                         data::CategoricalTable::Create(generator_.schema()));
  FRAPP_RETURN_IF_ERROR(generator_.AppendRows(&shard, n, rng_));
  auto buffer =
      std::make_shared<const data::CategoricalTable>(std::move(shard));
  out->view = data::ShardView{buffer.get(), data::RowRange{0, n}, emitted_};
  out->owned = std::move(buffer);
  emitted_ += n;
  return true;
}

}  // namespace pipeline
}  // namespace frapp
