// The shard-streaming privacy pipeline: one API for the whole
// perturb -> index -> count -> reconstruct -> mine flow.
//
// FRAPP's guarantees are per-record, so the pipeline shards the input table
// into chunk-aligned row ranges (data::ShardedTable) and streams each shard
// through client-side perturbation and vertical-index construction; the
// perturbed rows are dropped the moment their shard is indexed, so peak
// memory for perturbed data is O(in-flight shards x shard), never O(table).
// Mining then runs over the merged per-shard indexes with shard-parallel
// candidate counting. Because perturbation draws global seeded-chunk RNG
// streams and support counts are integer sums, the mined result is
// BIT-IDENTICAL for every (shard count, thread count) combination —
// parallelism and memory bounds are free of accuracy semantics.
//
// Mechanisms advertise shard support via core::Mechanism's shard-streaming
// contract (DET-GD and RAN-GD do); for the rest (MASK, C&P, IND-GD) the
// pipeline transparently falls back to the monolithic Prepare() path, so
// callers can route every mechanism through this one API.

#ifndef FRAPP_PIPELINE_PRIVACY_PIPELINE_H_
#define FRAPP_PIPELINE_PRIVACY_PIPELINE_H_

#include <cstdint>

#include "frapp/common/statusor.h"
#include "frapp/core/mechanism.h"
#include "frapp/data/sharded_table.h"
#include "frapp/data/table.h"
#include "frapp/mining/apriori.h"

namespace frapp {
namespace pipeline {

struct PipelineOptions {
  /// Row shards to stream (clamped to the number of seeded-chunk quanta;
  /// 0 = one shard per quantum). One shard reproduces the monolithic pass.
  size_t num_shards = 1;

  /// Worker threads for shard perturbation/indexing and for every
  /// candidate-counting pass (0 = hardware concurrency). Never affects
  /// results.
  size_t num_threads = 1;

  /// Master seed of the deterministic perturbation.
  uint64_t perturb_seed = 7;

  /// Mining parameters (threshold, length cap).
  mining::AprioriOptions mining;
};

/// Observability of one pipeline run.
struct PipelineStats {
  /// Shards actually streamed (1 on the monolithic fallback).
  size_t num_shards = 0;

  /// Rows of the largest shard: the per-shard work/memory unit.
  size_t max_shard_rows = 0;

  /// High-water mark of perturbed categorical-row bytes alive at once on
  /// the streaming path, bounded by (in-flight shards <= threads) x shard
  /// bytes. 0 on the fallback: the mechanism owns its perturbed
  /// representation there and its footprint is not observable.
  size_t peak_inflight_perturbed_bytes = 0;

  /// False when the mechanism lacks shard support and Prepare() ran instead.
  bool shard_streamed = false;
};

struct PipelineResult {
  mining::AprioriResult mined;
  PipelineStats stats;
};

/// Runs the full privacy-preserving mining flow for one mechanism.
class PrivacyPipeline {
 public:
  explicit PrivacyPipeline(PipelineOptions options) : options_(options) {}

  const PipelineOptions& options() const { return options_; }

  /// Perturbs `original` shard by shard (or monolithically for mechanisms
  /// without shard support), then mines with the mechanism's reconstructing
  /// estimator. Mining happens inside the pipeline; the mechanism's own
  /// estimator() state is populated only on the monolithic fallback path.
  StatusOr<PipelineResult> Run(core::Mechanism& mechanism,
                               const data::CategoricalTable& original) const;

 private:
  PipelineOptions options_;
};

}  // namespace pipeline
}  // namespace frapp

#endif  // FRAPP_PIPELINE_PRIVACY_PIPELINE_H_
