// The shard-streaming privacy pipeline: one API for the whole
// perturb -> index -> count -> reconstruct -> mine flow.
//
// FRAPP's guarantees are per-record, so the pipeline pulls chunk-aligned row
// shards from a TableSource (in-memory table, chunked CSV stream, or
// synthetic generator — see table_source.h) and streams each shard through
// client-side perturbation and vertical-index construction; the perturbed
// rows are dropped the moment their shard is indexed, and a streaming
// source's input rows the moment their shard is perturbed, so peak memory is
// O(in-flight shards x shard), never O(table). Mining then runs over the
// merged per-shard indexes with shard-parallel candidate counting. Because
// perturbation draws global seeded-chunk RNG streams and support counts are
// integer sums, the mined result is BIT-IDENTICAL for every (source kind,
// shard count, thread count) combination — parallelism and memory bounds are
// free of accuracy semantics.
//
// Every mechanism streams: DET-GD, RAN-GD and IND-GD as categorical shards
// counted by mining::ShardedVerticalIndex, MASK and C&P as one-hot boolean
// shards counted by data::ShardedBooleanVerticalIndex (the superset Mobius
// transform commutes with the row partition). There is no monolithic
// fallback; a mechanism without shard support is an error.
//
// Ingest can be pipelined: with PipelineOptions::prefetch_source the source
// is pulled through a PrefetchingTableSource producer thread, so the next
// shard parses while the workers perturb the current batch (see
// prefetching_table_source.h). PipelineStats reports where the ingest time
// went (source_wait_nanos on the critical path vs producer_parse_nanos
// overlapped).

#ifndef FRAPP_PIPELINE_PRIVACY_PIPELINE_H_
#define FRAPP_PIPELINE_PRIVACY_PIPELINE_H_

#include <cstdint>

#include "frapp/common/statusor.h"
#include "frapp/core/mechanism.h"
#include "frapp/data/sharded_table.h"
#include "frapp/data/table.h"
#include "frapp/mining/apriori.h"
#include "frapp/pipeline/table_source.h"

namespace frapp {
namespace pipeline {

struct PipelineOptions {
  /// Row shards to stream for IN-MEMORY inputs (clamped to the number of
  /// seeded-chunk quanta; 0 = one shard per quantum). Streaming sources
  /// bring their own shard size instead. One shard reproduces the
  /// monolithic pass.
  size_t num_shards = 1;

  /// Worker threads for shard perturbation/indexing and for every
  /// candidate-counting pass (0 = hardware concurrency). Never affects
  /// results.
  size_t num_threads = 1;

  /// Master seed of the deterministic perturbation.
  uint64_t perturb_seed = 7;

  /// When true, the source is pulled through a PrefetchingTableSource: a
  /// dedicated producer thread parses/generates the next shard(s) while the
  /// worker pool perturbs and indexes the current batch, hiding ingest
  /// latency behind compute. Order-preserving, so it NEVER affects results
  /// — only where the parse time goes (see PipelineStats).
  bool prefetch_source = false;

  /// Bounded prefetch queue depth in shards (floored at 1, and at the
  /// resolved parser count): how far the producer may run ahead, and
  /// therefore how many extra source-side shard buffers prefetching can
  /// hold alive. Only read when prefetch_source.
  size_t prefetch_shards = 2;

  /// Parser threads behind prefetch_source (0 = one per detected physical
  /// core). More than one engages the source's parse-parallel split when it
  /// has one (CSV raw-read + concurrent decode; see
  /// PrefetchingTableSource); sources without the split are clamped to one
  /// parser. Order-preserving either way — never affects results.
  size_t prefetch_parsers = 0;

  /// When true, Run pins the shared ThreadPool's workers one-per-physical-
  /// core before streaming (common::ThreadPool::SetPinPhysicalCores): the
  /// counting folds are memory-bound, so SMT siblings sharing a core mostly
  /// contend. The pool is process-wide, so the pin STAYS in effect after
  /// Run returns (it is never auto-disabled — scheduling only, results are
  /// bit-identical either way).
  bool pin_threads = false;

  /// Mining parameters (threshold, length cap).
  mining::AprioriOptions mining;
};

/// Observability of one pipeline run.
struct PipelineStats {
  /// Shards actually streamed.
  size_t num_shards = 0;

  /// Total rows pulled from the source.
  size_t total_rows = 0;

  /// Rows of the largest shard: the per-shard work/memory unit.
  size_t max_shard_rows = 0;

  /// High-water mark of perturbed-row bytes alive at once, bounded by
  /// (in-flight shards <= threads) x shard bytes. Categorical shards count
  /// one byte per attribute per row; boolean (one-hot) shards eight bytes
  /// per row.
  size_t peak_inflight_perturbed_bytes = 0;

  /// Nanoseconds the pipeline's pull loop spent blocked in
  /// TableSource::NextShard. Without prefetch this IS the ingest cost on
  /// the critical path; with prefetch it is only the residual latency the
  /// producer failed to hide.
  uint64_t source_wait_nanos = 0;

  /// Nanoseconds the prefetch producer spent inside the inner source —
  /// parse/generate work overlapped with perturb/count compute. 0 when
  /// prefetch_source is off. (producer_parse_nanos - source_wait_nanos is
  /// roughly the ingest latency prefetching hid.)
  uint64_t producer_parse_nanos = 0;
};

struct PipelineResult {
  mining::AprioriResult mined;
  PipelineStats stats;
};

/// Runs the full privacy-preserving mining flow for one mechanism.
///
/// The pipeline object itself is immutable configuration; each Run call is
/// self-contained. One Run streams from one thread (plus the worker pool it
/// fans out on, plus the prefetch producer when enabled) — callers must not
/// share a TableSource between concurrent Run calls, since sources are
/// single-producer by contract.
class PrivacyPipeline {
 public:
  explicit PrivacyPipeline(PipelineOptions options) : options_(options) {}

  const PipelineOptions& options() const { return options_; }

  /// Streams `source`'s shards through the mechanism's perturbation, indexes
  /// and drops each shard, then mines with the mechanism's reconstructing
  /// estimator. Mining happens inside the pipeline; the mechanism's own
  /// estimator() state is not touched. With options().prefetch_source the
  /// source is driven from a producer thread for the duration of the call
  /// (it is back under the caller's control when Run returns).
  StatusOr<PipelineResult> Run(core::Mechanism& mechanism,
                               TableSource& source) const;

  /// Convenience: streams an in-memory table through options().num_shards
  /// shards.
  StatusOr<PipelineResult> Run(core::Mechanism& mechanism,
                               const data::CategoricalTable& original) const;

 private:
  PipelineOptions options_;
};

}  // namespace pipeline
}  // namespace frapp

#endif  // FRAPP_PIPELINE_PRIVACY_PIPELINE_H_
