// TableSource: where the pipeline's rows come from.
//
// PrivacyPipeline streams chunk-aligned row shards through perturb -> index
// -> count; this abstraction decouples it from WHERE those shards originate,
// so a table never needs to exist fully in memory:
//
//   InMemoryTableSource   zero-copy views into an existing CategoricalTable
//   CsvTableSource        chunked CSV parse (data::ShardedCsvReader) into
//                         short-lived shard buffers
//   BinaryTableSource     pre-tokenized binary shard files
//                         (data::BinaryShardReader) — repeated runs skip
//                         text parsing entirely
//   SyntheticTableSource  chain-generator rows drawn shard by shard from one
//                         persistent RNG stream
//
// Any of them can be wrapped in a PrefetchingTableSource (see
// prefetching_table_source.h) to parse the next shard on a producer thread
// while the pipeline perturbs the current one.
//
// The contract every source upholds (and the pipeline relies on):
//  - NextShard yields shards in global row order, each starting on a
//    seeded-chunk boundary (data::kShardAlignmentRows), with every shard but
//    the last a whole number of chunks — so seeded perturbation of the
//    shards concatenates bit-for-bit to the monolithic pass. The ShardView
//    inside each PulledShard carries that GLOBAL begin row: for streaming
//    sources the buffer is shard-local (local rows [0, n) are global rows
//    [global_begin, global_begin + n)), and seeded perturbation derives its
//    RNG streams from the GLOBAL chunk index, which is why rows perturb
//    bit-identically no matter where they came from;
//  - each PulledShard keeps its own buffer alive (`owned`); once the caller
//    drops it, the rows are gone — which is what bounds peak memory to the
//    shards in flight;
//  - NextShard is pulled by ONE thread at a time (sources are
//    single-producer; they need no internal locking).

#ifndef FRAPP_PIPELINE_TABLE_SOURCE_H_
#define FRAPP_PIPELINE_TABLE_SOURCE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/csv.h"
#include "frapp/data/shard_io.h"
#include "frapp/data/sharded_table.h"
#include "frapp/data/synthetic.h"
#include "frapp/data/table.h"
#include "frapp/random/rng.h"

namespace frapp {
namespace pipeline {

/// One shard pulled from a source: a view plus whatever keeps its buffer
/// alive. For in-memory sources `owned` is null (the view aliases the
/// caller's table); for streaming sources it holds the shard's own buffer.
struct PulledShard {
  data::ShardView view;
  std::shared_ptr<const data::CategoricalTable> owned;
};

/// Sequential producer of chunk-aligned row shards.
class TableSource {
 public:
  virtual ~TableSource() = default;

  virtual const data::CategoricalSchema& schema() const = 0;

  /// Fills `*out` with the next shard; returns false once the stream is
  /// exhausted (*out is untouched then). Not thread-safe: the pipeline
  /// pulls from one thread and fans the perturbation out.
  virtual StatusOr<bool> NextShard(PulledShard* out) = 0;

  /// Hint that rows before global row `row` (a chunk-quantum multiple) will
  /// not be consumed. A seekable source repositions so the next NextShard
  /// starts at or before `row` at zero parse cost (binary files seek, an
  /// in-memory plan drops whole leading shards); sources that can only move
  /// forward by producing rows (CSV parse, generator stream) ignore the
  /// hint. Never skips PAST `row`, so a caller that drops leading rows
  /// itself — the frapp/dist worker assigned rows [begin, end) does — is
  /// correct over every source and merely faster over seekable ones.
  virtual Status SkipToRow(size_t row) {
    (void)row;
    return Status::OK();
  }

  /// Total rows when known up front (in-memory, synthetic); nullopt for
  /// true streams like CSV, where the row count is known only at the end.
  virtual std::optional<size_t> TotalRows() const { return std::nullopt; }

  /// Parse-parallel support (see PrefetchingTableSource's multi-parser
  /// mode). A source returning true splits NextShard into NextRawShard —
  /// the cheap serial IO half, single-producer like NextShard — and
  /// DecodeRawShard — the expensive decode half, safe to run on any number
  /// of threads for DISTINCT raw shards concurrently. The two-phase stream
  /// must yield exactly the shards NextShard would (same order, same global
  /// begin rows), so parallel decoding can never affect results. Today only
  /// CsvTableSource supports it (text decode dominates its ingest); the raw
  /// unit is a data::RawCsvShard line block.
  virtual bool SupportsParallelDecode() const { return false; }

  /// Pulls the next shard's raw bytes; false once exhausted. Only valid on
  /// sources with SupportsParallelDecode().
  virtual StatusOr<bool> NextRawShard(data::RawCsvShard* out) {
    (void)out;
    return Status::Unimplemented("source does not support parallel decode");
  }

  /// Decodes one raw shard into a delivered shard. Thread-safe for distinct
  /// shards. Only valid on sources with SupportsParallelDecode().
  virtual StatusOr<PulledShard> DecodeRawShard(
      const data::RawCsvShard& raw) const {
    (void)raw;
    return Status::Unimplemented("source does not support parallel decode");
  }
};

/// Zero-copy source over an existing table, partitioned into `num_shards`
/// chunk-aligned shards exactly as data::ShardedTable plans them (0 = one
/// shard per chunk quantum).
class InMemoryTableSource : public TableSource {
 public:
  /// `table` must outlive the source.
  InMemoryTableSource(const data::CategoricalTable& table, size_t num_shards)
      : table_(&table),
        plan_(data::ShardedTable::Plan(table.num_rows(), num_shards)) {}

  const data::CategoricalSchema& schema() const override {
    return table_->schema();
  }
  StatusOr<bool> NextShard(PulledShard* out) override;
  Status SkipToRow(size_t row) override;
  std::optional<size_t> TotalRows() const override { return table_->num_rows(); }

 private:
  const data::CategoricalTable* table_;
  std::vector<data::RowRange> plan_;
  size_t next_ = 0;
};

/// Streaming CSV ingest: parses `rows_per_shard` rows at a time into a
/// fresh buffer per shard. Peak source-side memory is one shard, never the
/// file.
class CsvTableSource : public TableSource {
 public:
  /// `rows_per_shard` must be a positive multiple of the chunk quantum
  /// (data::kShardAlignmentRows); defaults to one quantum.
  static StatusOr<CsvTableSource> Open(
      const std::string& path, const data::CategoricalSchema& schema,
      size_t rows_per_shard = data::kShardAlignmentRows);

  const data::CategoricalSchema& schema() const override {
    return reader_.schema();
  }
  StatusOr<bool> NextShard(PulledShard* out) override;

  /// CSV decode is pure per-line work over a private line block, so it
  /// two-phase-splits cleanly: ReadRawShard on the producer, DecodeRawShard
  /// on any parser thread.
  bool SupportsParallelDecode() const override { return true; }
  StatusOr<bool> NextRawShard(data::RawCsvShard* out) override;
  StatusOr<PulledShard> DecodeRawShard(
      const data::RawCsvShard& raw) const override;

 private:
  CsvTableSource(data::ShardedCsvReader reader, size_t rows_per_shard)
      : reader_(std::move(reader)), rows_per_shard_(rows_per_shard) {}

  data::ShardedCsvReader reader_;
  size_t rows_per_shard_;
  bool exhausted_ = false;
};

/// Streaming binary ingest: materializes `rows_per_shard` pre-tokenized
/// rows at a time from a data/shard_io.h binary file (written by
/// data::WriteBinaryTable or `frapp convert`). Same shape as CsvTableSource
/// but with no text parsing at all — one bulk read and a column scatter per
/// shard — so it is the fast path for repeatedly mined extracts.
class BinaryTableSource : public TableSource {
 public:
  /// `rows_per_shard` must be a positive multiple of the chunk quantum
  /// (data::kShardAlignmentRows); defaults to one quantum. Open validates
  /// the file's schema fingerprint against `schema`.
  static StatusOr<BinaryTableSource> Open(
      const std::string& path, const data::CategoricalSchema& schema,
      size_t rows_per_shard = data::kShardAlignmentRows);

  const data::CategoricalSchema& schema() const override {
    return reader_.schema();
  }
  StatusOr<bool> NextShard(PulledShard* out) override;

  /// One file seek: cells before `row` are never read, let alone decoded.
  Status SkipToRow(size_t row) override;

  /// Known up front: the binary header stores the row count.
  std::optional<size_t> TotalRows() const override {
    return reader_.total_rows();
  }

 private:
  BinaryTableSource(data::BinaryShardReader reader, size_t rows_per_shard)
      : reader_(std::move(reader)), rows_per_shard_(rows_per_shard) {}

  data::BinaryShardReader reader_;
  size_t rows_per_shard_;
};

/// Synthetic source: draws `total_rows` chain-generator records shard by
/// shard from one persistent Pcg64(seed) stream — bit-identical to
/// ChainGenerator::Generate(total_rows, seed), without ever holding more
/// than one shard of rows.
class SyntheticTableSource : public TableSource {
 public:
  /// `rows_per_shard` must be a positive multiple of the chunk quantum.
  static StatusOr<SyntheticTableSource> Create(
      data::ChainGenerator generator, size_t total_rows, uint64_t seed,
      size_t rows_per_shard = data::kShardAlignmentRows);

  const data::CategoricalSchema& schema() const override {
    return generator_.schema();
  }
  StatusOr<bool> NextShard(PulledShard* out) override;
  std::optional<size_t> TotalRows() const override { return total_rows_; }

 private:
  SyntheticTableSource(data::ChainGenerator generator, size_t total_rows,
                       uint64_t seed, size_t rows_per_shard)
      : generator_(std::move(generator)),
        total_rows_(total_rows),
        rows_per_shard_(rows_per_shard),
        rng_(seed) {}

  data::ChainGenerator generator_;
  size_t total_rows_;
  size_t rows_per_shard_;
  random::Pcg64 rng_;
  size_t emitted_ = 0;
};

}  // namespace pipeline
}  // namespace frapp

#endif  // FRAPP_PIPELINE_TABLE_SOURCE_H_
