// PrefetchingTableSource: hide ingest latency behind compute.
//
// The pipeline's consumer loop is strictly alternating without this: pull a
// batch of shards from the (single-threaded) source, fan perturb+index out
// over the workers, pull the next batch — so CSV parse latency, which
// dominates the streaming ingest path, serializes with compute. This
// decorator runs the inner source on one or more PARSER threads that stay a
// bounded number of shards ahead of the consumer through an ordered queue:
// the next shard(s) parse while the ThreadPool perturbs and counts the
// current one.
//
// Parser count:
//  - With 1 parser (or an inner source without SupportsParallelDecode) the
//    parser thread simply calls the inner NextShard — the classic producer
//    thread.
//  - With N > 1 parsers on a SupportsParallelDecode source, the pull is
//    two-phase: each parser serially claims the next RAW shard (cheap IO,
//    serialized on an internal mutex, tagged with a sequence number), then
//    DECODES it concurrently with the other parsers, and the decoded shards
//    re-enter the queue in sequence order through a reorder buffer. N = 0
//    asks for one parser per detected physical core
//    (common::GetCpuInfo().physical_cores).
//
// Contract (both modes):
//  - Order-preserving: shards are delivered in exactly the order the inner
//    source yields them, so the TableSource global-row-order contract (and
//    with it grid bit-identity) holds unchanged. Prefetching can never
//    affect results, only when and where the parse work happens.
//  - Error propagation: an inner-source error (e.g. a line-numbered CSV
//    parse Status) surfaces AT ITS SEQUENCE POSITION: the consumer first
//    drains every shard yielded before the error, then receives that exact
//    Status — sticky on every later call. When several parsers fail, the
//    earliest sequence wins. No hang, no lost shards, no swallowed error.
//  - Shutdown-safe: the destructor stops all parsers even mid-stream
//    (consumer abandoned the pull early) and joins them; at most one
//    in-flight inner pull per parser delays destruction.
//  - The inner source's serial half is touched by ONE thread at a time
//    (TableSource is single-producer by contract); schema and total-row
//    count are captured up front so the consumer never races it.
//
// The wrapper is itself a TableSource, so it composes with any inner source
// (CSV, binary, synthetic, in-memory) and any consumer.

#ifndef FRAPP_PIPELINE_PREFETCHING_TABLE_SOURCE_H_
#define FRAPP_PIPELINE_PREFETCHING_TABLE_SOURCE_H_

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "frapp/pipeline/table_source.h"

namespace frapp {
namespace pipeline {

/// Decorates a TableSource with parser thread(s) and a bounded, ordered
/// shard queue.
class PrefetchingTableSource : public TableSource {
 public:
  /// Parser-side observability, readable once the stream has reported
  /// exhaustion (or an error) through NextShard. (The latency NOT hidden —
  /// consumer time blocked pulling — is the consumer's to measure; the
  /// pipeline reports it as PipelineStats::source_wait_nanos.)
  struct ProducerStats {
    /// Nanoseconds spent inside the inner source's pull/decode, summed over
    /// all parser threads — the parse/generate work that overlapped with
    /// consumer compute (with several parsers this is aggregate thread
    /// time, not wall time).
    uint64_t parse_nanos = 0;

    /// Shards the parsers pulled from the inner source.
    size_t shards_produced = 0;

    /// Parser threads actually started (after resolving num_parsers = 0 and
    /// the inner source's parallel-decode support).
    size_t num_parsers = 0;
  };

  /// Starts the parser thread(s) immediately. `inner` must outlive this
  /// object and must not be touched by anyone else until it is destroyed.
  /// `max_queued_shards` bounds the DECODED shards queued ahead — and with
  /// them the extra source-side buffer memory prefetching costs; it is
  /// floored at the resolved parser count so every parser can make
  /// progress. `num_parsers` is clamped to 1 unless the inner source
  /// supports parallel decode; 0 means one per physical core.
  explicit PrefetchingTableSource(TableSource& inner,
                                  size_t max_queued_shards = 2,
                                  size_t num_parsers = 1);

  /// Stops the parsers (even if the stream was not drained) and joins them.
  ~PrefetchingTableSource() override;

  PrefetchingTableSource(const PrefetchingTableSource&) = delete;
  PrefetchingTableSource& operator=(const PrefetchingTableSource&) = delete;

  const data::CategoricalSchema& schema() const override { return *schema_; }

  /// Pops the next shard in sequence order, blocking until a parser has it
  /// (or the stream ends). Yields the inner source's shards in order, then
  /// its terminal condition: false on clean exhaustion, the earliest
  /// parser error otherwise (sticky).
  StatusOr<bool> NextShard(PulledShard* out) override;

  std::optional<size_t> TotalRows() const override { return total_rows_; }

  /// Valid after NextShard has returned false or an error (production has
  /// ended by then); concurrent with production it would race.
  ProducerStats producer_stats() const;

 private:
  void ParserLoop();

  TableSource* inner_;
  const data::CategoricalSchema* schema_;  // captured pre-thread: race-free
  std::optional<size_t> total_rows_;
  size_t capacity_;
  bool two_phase_;  // N-parser raw/decode split vs. direct NextShard pulls

  /// Serializes the inner source's serial half (claim + raw pull) and the
  /// sequence assignment; never held while decoding.
  std::mutex source_mu_;
  size_t claim_seq_ = 0;     // next sequence number to claim
  bool source_done_ = false; // inner source exhausted or errored

  mutable std::mutex mu_;
  std::condition_variable can_produce_;
  std::condition_variable can_consume_;
  /// Decoded shards awaiting delivery, keyed by sequence — the reorder
  /// buffer that restores claim order under concurrent decodes. With one
  /// parser it degenerates to a FIFO.
  std::map<size_t, PulledShard> ready_;
  size_t deliver_seq_ = 0;          // next sequence the consumer hands out
  std::optional<size_t> end_seq_;   // first sequence NOT in the stream
  Status status_;  // error ending the stream at end_seq_; OK on clean end
  bool stop_ = false;  // destructor asked the parsers to quit
  ProducerStats stats_;
  std::vector<std::thread> parsers_;  // last member: start after the rest
};

}  // namespace pipeline
}  // namespace frapp

#endif  // FRAPP_PIPELINE_PREFETCHING_TABLE_SOURCE_H_
