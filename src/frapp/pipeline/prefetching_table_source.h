// PrefetchingTableSource: hide ingest latency behind compute.
//
// The pipeline's consumer loop is strictly alternating without this: pull a
// batch of shards from the (single-threaded) source, fan perturb+index out
// over the workers, pull the next batch — so CSV parse latency, which
// dominates the streaming ingest path, serializes with compute. This
// decorator runs the inner source on a dedicated PRODUCER thread that stays
// exactly `max_queued_shards` ahead of the consumer through a bounded
// queue: the next shard parses while the ThreadPool perturbs and counts the
// current one.
//
// Contract:
//  - Order-preserving: shards come off the queue in exactly the order the
//    inner source yields them, so the TableSource global-row-order contract
//    (and with it grid bit-identity) holds unchanged. Prefetching can never
//    affect results, only when the parse work happens.
//  - Error propagation: an inner-source error (e.g. a line-numbered CSV
//    parse Status) ends production; the consumer first drains the shards
//    produced before the error, then receives that exact Status — sticky on
//    every later call. No hang, no lost shards, no swallowed error.
//  - Shutdown-safe: the destructor stops the producer even mid-stream
//    (consumer abandoned the pull early) and joins it; at most one
//    in-flight inner NextShard call delays destruction.
//  - The inner source is touched ONLY by the producer thread after
//    construction (TableSource is single-producer by contract); schema and
//    total-row count are captured up front so the consumer never races it.
//
// The wrapper is itself a TableSource, so it composes with any inner source
// (CSV, binary, synthetic, in-memory) and any consumer.

#ifndef FRAPP_PIPELINE_PREFETCHING_TABLE_SOURCE_H_
#define FRAPP_PIPELINE_PREFETCHING_TABLE_SOURCE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>

#include "frapp/pipeline/table_source.h"

namespace frapp {
namespace pipeline {

/// Decorates a TableSource with a producer thread and a bounded shard queue.
class PrefetchingTableSource : public TableSource {
 public:
  /// Producer-side observability, readable once the stream has reported
  /// exhaustion (or an error) through NextShard. (The latency NOT hidden —
  /// consumer time blocked pulling — is the consumer's to measure; the
  /// pipeline reports it as PipelineStats::source_wait_nanos.)
  struct ProducerStats {
    /// Nanoseconds the producer spent inside the inner source's NextShard —
    /// the parse/generate work that overlapped with consumer compute.
    uint64_t parse_nanos = 0;

    /// Shards the producer pulled from the inner source.
    size_t shards_produced = 0;
  };

  /// Starts the producer thread immediately. `inner` must outlive this
  /// object and must not be touched by anyone else until it is destroyed.
  /// `max_queued_shards` (floored at 1) bounds the shards parsed ahead —
  /// and with them the extra source-side buffer memory prefetching costs.
  explicit PrefetchingTableSource(TableSource& inner,
                                  size_t max_queued_shards = 2);

  /// Stops the producer (even if the stream was not drained) and joins it.
  ~PrefetchingTableSource() override;

  PrefetchingTableSource(const PrefetchingTableSource&) = delete;
  PrefetchingTableSource& operator=(const PrefetchingTableSource&) = delete;

  const data::CategoricalSchema& schema() const override { return *schema_; }

  /// Pops the next shard, blocking until the producer has one (or the
  /// stream ends). Yields the inner source's shards in order, then its
  /// terminal condition: false on clean exhaustion, the producer's Status
  /// on error (sticky).
  StatusOr<bool> NextShard(PulledShard* out) override;

  std::optional<size_t> TotalRows() const override { return total_rows_; }

  /// Valid after NextShard has returned false or an error (the producer has
  /// exited by then); concurrent with production it would race.
  ProducerStats producer_stats() const;

 private:
  void ProducerLoop();

  TableSource* inner_;
  const data::CategoricalSchema* schema_;  // captured pre-thread: race-free
  std::optional<size_t> total_rows_;
  size_t capacity_;

  mutable std::mutex mu_;
  std::condition_variable can_produce_;
  std::condition_variable can_consume_;
  std::deque<PulledShard> queue_;
  Status status_;      // first inner-source error; OK on clean exhaustion
  bool done_ = false;  // producer finished (exhausted, error, or stopped)
  bool stop_ = false;  // destructor asked the producer to quit
  ProducerStats stats_;
  std::thread producer_;  // last member: starts after everything it reads
};

}  // namespace pipeline
}  // namespace frapp

#endif  // FRAPP_PIPELINE_PREFETCHING_TABLE_SOURCE_H_
