// Exact support counting over categorical tables.

#ifndef FRAPP_MINING_SUPPORT_COUNTER_H_
#define FRAPP_MINING_SUPPORT_COUNTER_H_

#include <vector>

#include "frapp/data/table.h"
#include "frapp/mining/itemset.h"

namespace frapp {
namespace mining {

/// Number of records of `table` supporting `itemset` (exact count over the
/// columnar storage; O(N * |itemset|) with early exit per row).
size_t CountSupport(const data::CategoricalTable& table, const Itemset& itemset);

/// Support as a fraction of table rows (0 when the table is empty).
double SupportFraction(const data::CategoricalTable& table, const Itemset& itemset);

/// Counts several itemsets at once. Long candidate lists over non-trivial
/// tables are routed through a VerticalIndex (bitmap AND + popcount); short
/// ones fall back to the scalar scan.
std::vector<size_t> CountSupports(const data::CategoricalTable& table,
                                  const std::vector<Itemset>& itemsets);

}  // namespace mining
}  // namespace frapp

#endif  // FRAPP_MINING_SUPPORT_COUNTER_H_
