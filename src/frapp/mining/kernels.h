// Vectorized intersect+popcount counting kernels with runtime CPU dispatch.
//
// Every reconstructing estimator in the stack bottoms out in one of two
// folds over uint64_t bitmaps: popcount of a single bitmap (1-itemset
// supports) and popcount of the word-wise AND of k bitmaps (k-itemset
// supports, boolean superset counts). This header exposes both as function
// pointers resolved ONCE per process into the widest implementation the
// host supports:
//
//   scalar       portable word loop + __builtin_popcountll (always compiled)
//   harley-seal  portable carry-save-adder accumulation: 16-word blocks fold
//                into a bit-sliced counter network, so only one popcount is
//                paid per 16 words — the long-bitmap-run rung for hosts
//                without wide SIMD (always compiled, never auto-picked over
//                a SIMD level)
//   avx2         256-bit AND chains, nibble-lookup (vpshufb) popcount folded
//                with vpsadbw — the Mula technique
//   avx512       512-bit AND chains + native vpopcntq (AVX-512 VPOPCNTDQ),
//                masked loads for the tail
//
// Counts are INTEGERS, so every level returns bit-identical results on any
// input — vectorization reorders only additions of non-negative word
// popcounts, never changes them. That makes the dispatch level invisible to
// the seeded-chunk grid-bit-identity invariant, and testable by direct
// equality (tests/mining/kernels_test.cc).
//
// The environment variable FRAPP_FORCE_KERNEL={scalar,avx2,avx512} pins the
// dispatch for testing and benchmarking; forcing a level the host cannot run
// falls back to the best supported one (with a one-time stderr warning)
// instead of crashing on SIGILL. The SIMD bodies are compiled via GCC/Clang
// `target` attributes, so no special compiler flags are needed and the
// binary stays runnable on any x86-64; non-x86 builds compile the scalar
// level only. The dispatch table is the seam future backends (NEON, GPU
// count offload) plug into.

#ifndef FRAPP_MINING_KERNELS_H_
#define FRAPP_MINING_KERNELS_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace frapp {
namespace mining {

/// Dispatch levels. Values index internal tables; preference order is
/// kAvx512 > kAvx2 > kHarleySeal > kScalar (BestSupportedLevel), NOT the
/// numeric order — kHarleySeal was appended to keep existing values stable.
enum class KernelLevel : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
  kHarleySeal = 3,
};

/// popcount(maps[0][w] & ... & maps[k-1][w]) summed over w in [0, words).
/// Requires k >= 1; maps[j] must each hold `words` words.
using IntersectPopcountFn = uint64_t (*)(const uint64_t* const* maps,
                                         size_t k, size_t words);

/// popcount of one word range.
using PopcountRangeFn = uint64_t (*)(const uint64_t* data, size_t words);

/// One resolved implementation set. All members non-null.
struct KernelTable {
  IntersectPopcountFn intersect_popcount;
  PopcountRangeFn popcount_range;
  KernelLevel level;
};

/// The process-wide dispatch table: resolved once on first use from the
/// host's ISA features and FRAPP_FORCE_KERNEL, immutable afterwards (except
/// via the test-only override below).
const KernelTable& ActiveKernels();

/// "scalar" / "harley-seal" / "avx2" / "avx512".
const char* KernelLevelName(KernelLevel level);

/// Parses a FRAPP_FORCE_KERNEL value; nullopt for anything unknown.
std::optional<KernelLevel> ParseKernelLevelName(const std::string& name);

/// True when `level` is both compiled in and runnable on this host.
bool KernelLevelSupported(KernelLevel level);

/// The widest supported level (what ActiveKernels resolves to absent a
/// force override).
KernelLevel BestSupportedLevel();

/// The implementation set of one level; level must be supported. Lets the
/// equivalence tests compare levels directly without touching dispatch.
const KernelTable& KernelsForLevel(KernelLevel level);

namespace internal {
/// Pure resolution rule: the forced level when supported, otherwise the
/// best supported one. Exposed for unit tests; `ActiveKernels` applies it
/// to FRAPP_FORCE_KERNEL once.
KernelLevel ResolveKernelLevel(std::optional<KernelLevel> forced);

/// Test-only: swaps the active dispatch table (e.g. to prove end-to-end
/// mines are bit-identical across levels inside ONE process). Not safe
/// concurrently with counting; tests restore with ResetActiveKernels.
void SetActiveKernelsForTest(KernelLevel level);
void ResetActiveKernelsForTest();
}  // namespace internal

}  // namespace mining
}  // namespace frapp

#endif  // FRAPP_MINING_KERNELS_H_
