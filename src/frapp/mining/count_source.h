// Abstract source of candidate support COUNT VECTORS — the seam that
// separates where counts come from (a local sharded bitmap index, or remote
// workers shipping per-shard vectors over a wire) from how mechanisms
// reconstruct supports out of them.
//
// Every FRAPP reconstruction input is linear in the row partition: an
// itemset's support count over partitioned rows is the integer sum of the
// per-partition counts. The reconstructing estimators therefore never need
// rows, shards, or indexes — only TOTAL integer count vectors plus the total
// row count. Expressing that dependency as this interface is what lets the
// same estimator code run bit-identically over a local ShardedVerticalIndex
// and over a frapp/dist coordinator merging count vectors from remote
// workers: the integers are the same, so the double arithmetic downstream is
// the same.

#ifndef FRAPP_MINING_COUNT_SOURCE_H_
#define FRAPP_MINING_COUNT_SOURCE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/mining/itemset.h"
#include "frapp/mining/sharded_vertical_index.h"

namespace frapp {
namespace mining {

/// Total support counts of candidate itemsets over one (conceptually single)
/// perturbed categorical database, however its rows are physically placed.
class SupportCountSource {
 public:
  virtual ~SupportCountSource() = default;

  /// Total rows behind the counts (the denominator of support fractions).
  virtual size_t num_rows() const = 0;

  /// counts[c] = #rows supporting itemsets[c], summed over every physical
  /// partition. Fallible: a remote source can lose its workers mid-pass.
  virtual StatusOr<std::vector<uint64_t>> CountSupports(
      const std::vector<Itemset>& itemsets) = 0;
};

/// In-process implementation over a sharded vertical bitmap index (the
/// single-machine pipeline path).
class LocalSupportCountSource : public SupportCountSource {
 public:
  /// Owns the index; `num_threads` parallelizes each counting pass (0 =
  /// hardware concurrency). Never affects results.
  LocalSupportCountSource(ShardedVerticalIndex index, size_t num_threads = 1)
      : index_(std::move(index)), num_threads_(num_threads) {}

  size_t num_rows() const override { return index_.num_rows(); }

  StatusOr<std::vector<uint64_t>> CountSupports(
      const std::vector<Itemset>& itemsets) override {
    const std::vector<size_t> counts =
        index_.CountSupports(itemsets, num_threads_);
    return std::vector<uint64_t>(counts.begin(), counts.end());
  }

  const ShardedVerticalIndex& index() const { return index_; }

 private:
  ShardedVerticalIndex index_;
  size_t num_threads_;
};

}  // namespace mining
}  // namespace frapp

#endif  // FRAPP_MINING_COUNT_SOURCE_H_
