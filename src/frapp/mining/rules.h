// Association-rule generation from frequent itemsets (the mining model the
// paper's introduction motivates: "adult females with malarial infections
// are also prone to contract tuberculosis").

#ifndef FRAPP_MINING_RULES_H_
#define FRAPP_MINING_RULES_H_

#include <string>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/mining/apriori.h"

namespace frapp {
namespace mining {

/// A rule antecedent => consequent with support/confidence computed from
/// (possibly reconstructed) itemset supports.
struct AssociationRule {
  Itemset antecedent;
  Itemset consequent;
  double support;     ///< support of antecedent U consequent
  double confidence;  ///< support(A U C) / support(A)

  std::string ToString(const data::CategoricalSchema& schema) const;
};

/// Derives all rules with confidence >= `min_confidence` from the frequent
/// itemsets in `result`. Rules are ordered by descending confidence, ties by
/// descending support.
std::vector<AssociationRule> GenerateRules(const AprioriResult& result,
                                           double min_confidence);

}  // namespace mining
}  // namespace frapp

#endif  // FRAPP_MINING_RULES_H_
