// Association-rule generation from frequent itemsets (the mining model the
// paper's introduction motivates: "adult females with malarial infections
// are also prone to contract tuberculosis").
//
// Rule generation is the classical second phase of Agrawal & Srikant's
// Apriori: for every frequent itemset F and every non-empty proper subset
// A of F, emit A => F \ A when
//
//   conf(A => F \ A) = sup(F) / sup(A) >= min_confidence.
//
// In the privacy-preserving setting every support above is a RECONSTRUCTED
// support (the gamma-diagonal inverse of the perturbed counts, paper
// Eq. 28), so confidence is a ratio of two reconstructed estimates — no
// extra data pass, and the rules derive from exactly the itemset supports
// the mine already reported.

#ifndef FRAPP_MINING_RULES_H_
#define FRAPP_MINING_RULES_H_

#include <cstddef>
#include <string>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/mining/apriori.h"

namespace frapp {
namespace mining {

/// A rule antecedent => consequent with support/confidence computed from
/// (possibly reconstructed) itemset supports.
struct AssociationRule {
  Itemset antecedent;
  Itemset consequent;
  double support;     ///< support of antecedent U consequent
  double confidence;  ///< support(A U C) / support(A)

  std::string ToString(const data::CategoricalSchema& schema) const;
};

struct RuleOptions {
  /// Minimum confidence; rules below it are dropped.
  double min_confidence = 0.0;

  /// Extra floor on the rule's (union) support. 0 keeps every frequent
  /// itemset's rules — the mine's own supmin already bounds them below.
  double min_support = 0.0;
};

/// Diagnostics of one generation pass.
struct RuleGenStats {
  /// Frequent itemsets of length >= 2 (the only rule sources).
  size_t itemsets_considered = 0;

  /// Antecedent/consequent splits evaluated across those itemsets.
  size_t splits_evaluated = 0;

  /// Splits skipped because the antecedent's support was missing from the
  /// result or non-positive (possible under noisy reconstruction).
  size_t missing_antecedents = 0;

  /// Rules that cleared both thresholds.
  size_t emitted = 0;
};

/// Derives every rule A => F \ A over the frequent itemsets of `result`
/// whose confidence and support clear `options`. The output order is a
/// deterministic total order — descending confidence, then descending
/// support, then ascending antecedent and consequent — so two runs over the
/// same result are byte-identical however the splits were enumerated.
/// Rejects itemsets too long for the split enumeration (k >= 64; far above
/// the 2^k counting caps upstream).
StatusOr<std::vector<AssociationRule>> GenerateAssociationRules(
    const AprioriResult& result, const RuleOptions& options,
    RuleGenStats* stats = nullptr);

/// Legacy convenience wrapper: confidence-only filtering, no stats.
std::vector<AssociationRule> GenerateRules(const AprioriResult& result,
                                           double min_confidence);

}  // namespace mining
}  // namespace frapp

#endif  // FRAPP_MINING_RULES_H_
