#include "frapp/mining/apriori.h"

#include <algorithm>
#include <unordered_set>

#include "frapp/mining/support_counter.h"

namespace frapp {
namespace mining {

StatusOr<std::vector<double>> SupportEstimator::EstimateSupports(
    const std::vector<Itemset>& itemsets) {
  std::vector<double> supports(itemsets.size());
  for (size_t c = 0; c < itemsets.size(); ++c) {
    FRAPP_ASSIGN_OR_RETURN(supports[c], EstimateSupport(itemsets[c]));
  }
  return supports;
}

StatusOr<double> ExactSupportEstimator::EstimateSupport(const Itemset& itemset) {
  return index_.SupportFraction(itemset);
}

StatusOr<std::vector<double>> ExactSupportEstimator::EstimateSupports(
    const std::vector<Itemset>& itemsets) {
  std::vector<double> supports(itemsets.size());
  if (index_.num_rows() == 0) {
    std::fill(supports.begin(), supports.end(), 0.0);
    return supports;
  }
  const double n = static_cast<double>(index_.num_rows());
  const std::vector<size_t> counts = index_.CountSupports(itemsets, num_threads_);
  for (size_t c = 0; c < counts.size(); ++c) {
    supports[c] = static_cast<double>(counts[c]) / n;
  }
  return supports;
}

size_t AprioriResult::TotalFrequent() const {
  size_t total = 0;
  for (const auto& level : by_length) total += level.size();
  return total;
}

const std::vector<FrequentItemset>& AprioriResult::OfLength(size_t k) const {
  static const std::vector<FrequentItemset> kEmpty;
  if (k == 0 || k > by_length.size()) return kEmpty;
  return by_length[k - 1];
}

size_t AprioriResult::MaxLength() const {
  for (size_t k = by_length.size(); k-- > 0;) {
    if (!by_length[k].empty()) return k + 1;
  }
  return 0;
}

// Apriori join: combine sorted frequent k-itemsets sharing their first k-1
// items; prune candidates with an infrequent k-subset.
std::vector<Itemset> GenerateCandidates(
    const std::vector<FrequentItemset>& frequent,
    const std::unordered_set<Itemset, Itemset::Hash>& frequent_lookup) {
  std::vector<Itemset> candidates;
  const size_t n = frequent.size();
  for (size_t a = 0; a < n; ++a) {
    const std::vector<Item>& items_a = frequent[a].itemset.items();
    for (size_t b = a + 1; b < n; ++b) {
      const std::vector<Item>& items_b = frequent[b].itemset.items();
      // Shared (k-1)-prefix? The lists are globally sorted, so once prefixes
      // diverge for this `a`, later `b` cannot match either.
      bool prefix_equal = true;
      for (size_t i = 0; i + 1 < items_a.size(); ++i) {
        if (!(items_a[i] == items_b[i])) {
          prefix_equal = false;
          break;
        }
      }
      if (!prefix_equal) break;
      const Item& last_a = items_a.back();
      const Item& last_b = items_b.back();
      if (last_a.attribute == last_b.attribute) continue;  // same-attr clash

      std::vector<Item> joined = items_a;
      joined.push_back(last_b);
      std::sort(joined.begin(), joined.end());
      Itemset candidate = Itemset::FromSortedUnchecked(std::move(joined));

      // Prune: every k-subset must be frequent.
      bool all_subsets_frequent = true;
      const std::vector<Item>& citems = candidate.items();
      std::vector<Item> subset(citems.size() - 1);
      for (size_t skip = 0; skip < citems.size() && all_subsets_frequent; ++skip) {
        size_t w = 0;
        for (size_t i = 0; i < citems.size(); ++i) {
          if (i != skip) subset[w++] = citems[i];
        }
        if (frequent_lookup.find(Itemset::FromSortedUnchecked(subset)) ==
            frequent_lookup.end()) {
          all_subsets_frequent = false;
        }
      }
      if (all_subsets_frequent) candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

StatusOr<AprioriResult> MineFrequentItemsets(const data::CategoricalSchema& schema,
                                             SupportEstimator& estimator,
                                             const AprioriOptions& options) {
  if (!(options.min_support > 0.0) || options.min_support > 1.0) {
    return Status::InvalidArgument("min_support must be in (0, 1]");
  }
  const size_t max_length = (options.max_length == 0)
                                ? schema.num_attributes()
                                : std::min(options.max_length,
                                           schema.num_attributes());

  AprioriResult result;

  // Pass 1: all single items.
  std::vector<Itemset> candidates;
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    for (size_t c = 0; c < schema.Cardinality(j); ++c) {
      candidates.push_back(Itemset::FromSortedUnchecked(
          {Item{static_cast<uint16_t>(j), static_cast<uint16_t>(c)}}));
    }
  }

  for (size_t k = 1; k <= max_length && !candidates.empty(); ++k) {
    result.candidates_per_pass.push_back(candidates.size());
    // One batch call per pass lets vertical-index estimators count the whole
    // candidate list without rescanning rows.
    FRAPP_ASSIGN_OR_RETURN(std::vector<double> supports,
                           estimator.EstimateSupports(candidates));
    std::vector<FrequentItemset> frequent;
    for (size_t c = 0; c < candidates.size(); ++c) {
      if (supports[c] >= options.min_support) {
        frequent.push_back(FrequentItemset{candidates[c], supports[c]});
      }
    }
    std::sort(frequent.begin(), frequent.end(),
              [](const FrequentItemset& a, const FrequentItemset& b) {
                return a.itemset < b.itemset;
              });
    result.by_length.push_back(frequent);
    if (frequent.empty() || k == max_length) break;

    std::unordered_set<Itemset, Itemset::Hash> lookup;
    lookup.reserve(frequent.size() * 2);
    for (const FrequentItemset& f : frequent) lookup.insert(f.itemset);
    candidates = GenerateCandidates(frequent, lookup);
  }
  return result;
}

StatusOr<AprioriResult> MineExact(const data::CategoricalTable& table,
                                  const AprioriOptions& options) {
  ExactSupportEstimator estimator(table, options.count_shards,
                                  options.num_threads);
  return MineFrequentItemsets(table.schema(), estimator, options);
}

}  // namespace mining
}  // namespace frapp
