#include "frapp/mining/itemset.h"

#include <algorithm>

namespace frapp {
namespace mining {

StatusOr<Itemset> Itemset::Create(std::vector<Item> items) {
  std::sort(items.begin(), items.end());
  for (size_t i = 1; i < items.size(); ++i) {
    if (items[i].attribute == items[i - 1].attribute) {
      return Status::InvalidArgument(
          "itemset has two items on attribute " +
          std::to_string(items[i].attribute));
    }
  }
  Itemset out;
  out.items_ = std::move(items);
  return out;
}

uint32_t Itemset::AttributeMask() const {
  uint32_t mask = 0;
  for (const Item& it : items_) mask |= (1u << it.attribute);
  return mask;
}

std::vector<size_t> Itemset::AttributeIndices() const {
  std::vector<size_t> out;
  out.reserve(items_.size());
  for (const Item& it : items_) out.push_back(it.attribute);
  return out;
}

bool Itemset::Contains(const Itemset& other) const {
  // Both sides are sorted by attribute; linear merge.
  size_t i = 0;
  for (const Item& needle : other.items_) {
    while (i < items_.size() && items_[i].attribute < needle.attribute) ++i;
    if (i == items_.size() || !(items_[i] == needle)) return false;
  }
  return true;
}

std::string Itemset::ToString(const data::CategoricalSchema& schema) const {
  std::string out = "{";
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out += ", ";
    const Item& it = items_[i];
    out += schema.attribute(it.attribute).name;
    out += "=";
    out += schema.attribute(it.attribute).categories[it.category];
  }
  out += "}";
  return out;
}

}  // namespace mining
}  // namespace frapp
