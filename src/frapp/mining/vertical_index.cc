#include "frapp/mining/vertical_index.h"

#include "frapp/common/parallel.h"
#include "frapp/mining/kernels.h"

namespace frapp {
namespace mining {

VerticalIndex VerticalIndex::Build(const data::CategoricalTable& table,
                                   size_t num_threads) {
  return BuildRange(table, data::RowRange{0, table.num_rows()}, num_threads);
}

VerticalIndex VerticalIndex::BuildRange(const data::CategoricalTable& table,
                                        const data::RowRange& range,
                                        size_t num_threads) {
  VerticalIndex index;
  const data::CategoricalSchema& schema = table.schema();
  const size_t m = schema.num_attributes();
  index.num_rows_ = range.size();
  index.words_ = (index.num_rows_ + 63) / 64;
  index.offsets_.resize(m);
  size_t items = 0;
  for (size_t j = 0; j < m; ++j) {
    index.offsets_[j] = items;
    items += schema.Cardinality(j);
  }
  index.bits_.assign(items * index.words_, 0);

  // Attributes write disjoint bitmap ranges, so parallelizing over them is
  // race-free and bit-identical for every worker count.
  common::ParallelForChunks(m, num_threads, [&](size_t j) {
    const uint8_t* col = table.Column(j).data() + range.begin;
    uint64_t* base = index.bits_.data() + index.offsets_[j] * index.words_;
    for (size_t i = 0; i < index.num_rows_; ++i) {
      base[static_cast<size_t>(col[i]) * index.words_ + (i >> 6)] |=
          1ull << (i & 63);
    }
  });
  return index;
}

VerticalIndex VerticalIndex::FromRaw(size_t num_rows,
                                     std::vector<size_t> offsets,
                                     std::vector<uint64_t> bits) {
  VerticalIndex index;
  index.num_rows_ = num_rows;
  index.words_ = (num_rows + 63) / 64;
  index.offsets_ = std::move(offsets);
  index.bits_ = std::move(bits);
  return index;
}

size_t VerticalIndex::CountSupport(const Itemset& itemset) const {
  const size_t k = itemset.size();
  if (k == 0) return num_rows_;
  const KernelTable& kernels = ActiveKernels();
  if (k == 1) {
    return static_cast<size_t>(kernels.popcount_range(
        Bitmap(itemset.item(0).attribute, itemset.item(0).category), words_));
  }
  // Word-wise AND across the k bitmaps via the dispatched kernel, without
  // materializing the intersection. Itemsets have one item per attribute, so
  // k is bounded by the schema's attribute count; spill to the heap past the
  // inline cap.
  constexpr size_t kInlineMaps = 32;
  const uint64_t* inline_maps[kInlineMaps];
  std::vector<const uint64_t*> heap_maps;
  const uint64_t** maps = inline_maps;
  if (k > kInlineMaps) {
    heap_maps.resize(k);
    maps = heap_maps.data();
  }
  for (size_t j = 0; j < k; ++j) {
    maps[j] = Bitmap(itemset.item(j).attribute, itemset.item(j).category);
  }
  return static_cast<size_t>(kernels.intersect_popcount(maps, k, words_));
}

std::vector<size_t> VerticalIndex::CountSupports(
    const std::vector<Itemset>& itemsets) const {
  std::vector<size_t> counts(itemsets.size());
  for (size_t c = 0; c < itemsets.size(); ++c) {
    counts[c] = CountSupport(itemsets[c]);
  }
  return counts;
}

double VerticalIndex::SupportFraction(const Itemset& itemset) const {
  if (num_rows_ == 0) return 0.0;
  return static_cast<double>(CountSupport(itemset)) /
         static_cast<double>(num_rows_);
}

}  // namespace mining
}  // namespace frapp
