// Apriori frequent-itemset mining (Agrawal & Srikant, VLDB'94) with a
// pluggable support oracle.
//
// The paper's privacy-preserving pipeline (Section 7) is exactly this: run
// Apriori bottom-up, but at the end of every pass reconstruct the original
// supports from the perturbed-database supports. Plugging in an exact
// estimator mines the true frequent itemsets; plugging in a mechanism's
// reconstructing estimator mines the privacy-preserving result.

#ifndef FRAPP_MINING_APRIORI_H_
#define FRAPP_MINING_APRIORI_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/schema.h"
#include "frapp/data/table.h"
#include "frapp/mining/itemset.h"
#include "frapp/mining/sharded_vertical_index.h"
#include "frapp/mining/vertical_index.h"

namespace frapp {
namespace mining {

/// Oracle answering "what is the (possibly reconstructed) support fraction
/// of this itemset?". Estimates may be negative or exceed 1 for noisy
/// reconstructions; Apriori only compares them against the threshold.
class SupportEstimator {
 public:
  virtual ~SupportEstimator() = default;

  /// Support estimate for one itemset, as a fraction of records.
  virtual StatusOr<double> EstimateSupport(const Itemset& itemset) = 0;

  /// Batch estimate for a whole Apriori pass's candidate list. The default
  /// loops over EstimateSupport; estimators with a vertical index override
  /// this to count the entire list without rescanning rows.
  virtual StatusOr<std::vector<double>> EstimateSupports(
      const std::vector<Itemset>& itemsets);
};

/// Exact estimator backed by a sharded vertical bitmap index over the table
/// (the miner's ground truth). With the defaults (one shard, one thread) it
/// behaves exactly like the former monolithic-index estimator; more shards
/// and threads parallelize every candidate-counting pass with bit-identical
/// results.
class ExactSupportEstimator : public SupportEstimator {
 public:
  /// Builds the per-shard indexes in one pass; the table must outlive the
  /// estimator. `num_threads` 0 = hardware concurrency.
  explicit ExactSupportEstimator(const data::CategoricalTable& table,
                                 size_t num_shards = 1, size_t num_threads = 1)
      : index_(ShardedVerticalIndex::Build(table, num_shards, num_threads)),
        num_threads_(num_threads) {}

  StatusOr<double> EstimateSupport(const Itemset& itemset) override;
  StatusOr<std::vector<double>> EstimateSupports(
      const std::vector<Itemset>& itemsets) override;

 private:
  ShardedVerticalIndex index_;
  size_t num_threads_;
};

struct AprioriOptions {
  /// supmin as a fraction (the paper uses 0.02).
  double min_support = 0.02;

  /// Stop after this itemset length; 0 = no cap (bounded by M anyway).
  size_t max_length = 0;

  /// Row shards for the exact counting substrate (MineExact). Results are
  /// bit-identical for every value; more shards expose more parallelism.
  size_t count_shards = 1;

  /// Worker threads for shard-parallel candidate counting (0 = hardware
  /// concurrency). Results are bit-identical for every value.
  size_t num_threads = 1;
};

/// A discovered frequent itemset with its (estimated) support fraction.
struct FrequentItemset {
  Itemset itemset;
  double support;
};

/// Mining output, grouped by itemset length.
struct AprioriResult {
  /// by_length[k-1] = frequent itemsets of length k, sorted.
  std::vector<std::vector<FrequentItemset>> by_length;

  /// Candidates evaluated per pass (diagnostics).
  std::vector<size_t> candidates_per_pass;

  /// Total frequent itemsets across lengths.
  size_t TotalFrequent() const;

  /// All frequent itemsets of length k (empty when none).
  const std::vector<FrequentItemset>& OfLength(size_t k) const;

  /// Longest length with at least one frequent itemset (0 when none).
  size_t MaxLength() const;
};

/// Apriori candidate generation (the VLDB'94 join + prune): combines
/// itemsets of `frequent` — which MUST be sorted by itemset — that share
/// their first k-1 items, skips same-attribute clashes, and prunes any
/// candidate with a k-subset missing from `frequent_lookup`. Exposed (it
/// used to be internal to MineFrequentItemsets) so the incremental superset
/// walker in frapp/store generates candidate lists through the EXACT same
/// code path as a from-scratch mine — the bit-identity of incremental
/// mining rests on the two walks agreeing candidate for candidate.
std::vector<Itemset> GenerateCandidates(
    const std::vector<FrequentItemset>& frequent,
    const std::unordered_set<Itemset, Itemset::Hash>& frequent_lookup);

/// Runs Apriori over the schema's item universe using `estimator` as the
/// support oracle.
StatusOr<AprioriResult> MineFrequentItemsets(const data::CategoricalSchema& schema,
                                             SupportEstimator& estimator,
                                             const AprioriOptions& options);

/// Convenience: exact mining of `table`.
StatusOr<AprioriResult> MineExact(const data::CategoricalTable& table,
                                  const AprioriOptions& options);

}  // namespace mining
}  // namespace frapp

#endif  // FRAPP_MINING_APRIORI_H_
