// Itemsets over categorical data (paper Section 6).
//
// An item is an (attribute, category) pair; an itemset is a set of items
// over DISTINCT attributes. A record supports an itemset when it takes the
// given category on every listed attribute. Boolean market-basket itemsets
// are the special case of 2-category attributes.

#ifndef FRAPP_MINING_ITEMSET_H_
#define FRAPP_MINING_ITEMSET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/data/schema.h"

namespace frapp {
namespace mining {

/// One (attribute, category) pair.
struct Item {
  uint16_t attribute;
  uint16_t category;

  friend bool operator==(const Item& a, const Item& b) {
    return a.attribute == b.attribute && a.category == b.category;
  }
  friend auto operator<=>(const Item& a, const Item& b) = default;
};

/// A set of items over distinct attributes, kept sorted by attribute.
class Itemset {
 public:
  Itemset() = default;

  /// Builds from items; validates distinct attributes and sorts.
  static StatusOr<Itemset> Create(std::vector<Item> items);

  /// Builds from pre-sorted, pre-validated items (hot paths; checked in
  /// debug via FRAPP_CHECK on size only).
  static Itemset FromSortedUnchecked(std::vector<Item> items) {
    Itemset out;
    out.items_ = std::move(items);
    return out;
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }
  const Item& item(size_t i) const { return items_[i]; }
  const std::vector<Item>& items() const { return items_; }

  /// Bitmask of attributes used (attribute index < 32 assumed; FRAPP's
  /// datasets have M <= 7).
  uint32_t AttributeMask() const;

  /// Sorted list of attribute indices.
  std::vector<size_t> AttributeIndices() const;

  /// True when `other`'s items are a subset of this itemset's items.
  bool Contains(const Itemset& other) const;

  /// "{age=(15-35], sex=Male}" using schema labels.
  std::string ToString(const data::CategoricalSchema& schema) const;

  friend bool operator==(const Itemset& a, const Itemset& b) {
    return a.items_ == b.items_;
  }
  friend auto operator<=>(const Itemset& a, const Itemset& b) = default;

  /// Hash for unordered containers.
  struct Hash {
    size_t operator()(const Itemset& s) const {
      size_t h = 0x9e3779b97f4a7c15ULL;
      for (const Item& it : s.items_) {
        h ^= (static_cast<size_t>(it.attribute) << 16 | it.category) +
             0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
      }
      return h;
    }
  };

 private:
  std::vector<Item> items_;
};

}  // namespace mining
}  // namespace frapp

#endif  // FRAPP_MINING_ITEMSET_H_
