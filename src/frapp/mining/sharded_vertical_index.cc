#include "frapp/mining/sharded_vertical_index.h"

#include <algorithm>

#include "frapp/common/cpuinfo.h"
#include "frapp/common/parallel.h"
#include "frapp/common/tree_merge.h"

namespace frapp {
namespace mining {

namespace {

/// Bounds on candidates per counting task: the floor keeps a pass of a few
/// hundred candidates load-balanced across workers, the ceiling keeps the
/// per-task dispatch amortized without starving the grid of tasks.
constexpr size_t kMinCandidateBlock = 8;
constexpr size_t kMaxCandidateBlock = 256;

/// Candidates per (shard x block) grid cell, sized from the detected cache
/// geometry: one cell's working set is the bitmaps its candidates AND
/// together (<= avg-itemset-size bitmaps of `words` words each, usually
/// heavily shared between neighbouring candidates) plus its output slice.
/// Tiling so that upper bound fits half the L2 keeps a cell's bitmaps
/// resident across its whole candidate run instead of being re-streamed
/// from L3/DRAM per candidate. Block size only partitions work — counts
/// are integer sums either way — so it never affects results.
size_t CandidateBlockSize(const std::vector<Itemset>& itemsets, size_t words) {
  size_t total_items = 0;
  for (const Itemset& itemset : itemsets) total_items += itemset.size();
  const size_t avg_k =
      std::max<size_t>(1, (total_items + itemsets.size() - 1) / itemsets.size());
  const size_t bytes_per_candidate =
      std::max<size_t>(1, avg_k * words * sizeof(uint64_t));
  const size_t budget = common::GetCpuInfo().cache.l2_bytes / 2;
  return std::clamp(budget / bytes_per_candidate, kMinCandidateBlock,
                    kMaxCandidateBlock);
}

}  // namespace

ShardedVerticalIndex ShardedVerticalIndex::Build(
    const data::CategoricalTable& table, size_t num_shards,
    size_t num_threads) {
  // Counting needs no chunk alignment (alignment 1 splits even small tables
  // into the requested number of shards), so "one shard per quantum" is
  // resolved to a count first.
  const size_t resolved_shards =
      num_shards != 0 ? num_shards
                      : common::NumChunks(table.num_rows(),
                                          data::kShardAlignmentRows);
  const std::vector<data::RowRange> plan =
      data::ShardedTable::Plan(table.num_rows(), resolved_shards,
                               /*alignment=*/1);
  ShardedVerticalIndex index;
  index.num_rows_ = table.num_rows();
  index.shards_.resize(plan.size());
  common::ParallelForChunks(plan.size(), num_threads, [&](size_t s) {
    index.shards_[s] = VerticalIndex::BuildRange(table, plan[s]);
  });
  return index;
}

ShardedVerticalIndex ShardedVerticalIndex::FromShards(
    std::vector<VerticalIndex> shards) {
  ShardedVerticalIndex index;
  index.shards_ = std::move(shards);
  for (const VerticalIndex& shard : index.shards_) {
    index.num_rows_ += shard.num_rows();
  }
  return index;
}

void ShardedVerticalIndex::AppendShards(std::vector<VerticalIndex> shards) {
  for (VerticalIndex& shard : shards) {
    num_rows_ += shard.num_rows();
    shards_.push_back(std::move(shard));
  }
}

size_t ShardedVerticalIndex::CountSupport(const Itemset& itemset) const {
  size_t count = 0;
  for (const VerticalIndex& shard : shards_) count += shard.CountSupport(itemset);
  return count;
}

std::vector<size_t> ShardedVerticalIndex::CountSupports(
    const std::vector<Itemset>& itemsets, size_t num_threads) const {
  const size_t num_candidates = itemsets.size();
  if (num_candidates == 0) return {};
  if (shards_.empty()) return std::vector<size_t>(num_candidates, 0);

  // Fan the (shard x candidate-block) grid out: every task fills a disjoint
  // slice of one shard's count vector, so the writes are race-free and the
  // values are a pure function of the cell — deterministic at any worker
  // count. Blocks are tiled to the L2 working set (see CandidateBlockSize);
  // shard word counts differ only by the tail shard, so shards_[0] is a
  // representative sizing input — and sizing is a pure heuristic anyway.
  const size_t block_size =
      CandidateBlockSize(itemsets, shards_[0].words_per_item());
  const size_t blocks = common::NumChunks(num_candidates, block_size);
  std::vector<std::vector<size_t>> per_shard(
      shards_.size(), std::vector<size_t>(num_candidates, 0));
  common::ParallelForChunks(
      shards_.size() * blocks, num_threads, [&](size_t task) {
        const size_t s = task / blocks;
        const size_t first = (task % blocks) * block_size;
        const size_t last = std::min(num_candidates, first + block_size);
        const VerticalIndex& shard = shards_[s];
        std::vector<size_t>& counts = per_shard[s];
        for (size_t c = first; c < last; ++c) {
          counts[c] = shard.CountSupport(itemsets[c]);
        }
      });

  // Deterministic pairwise tree merge of the per-shard vectors — the same
  // reduce the frapp/dist coordinator runs over per-worker vectors.
  common::TreeMergeVectors(per_shard);
  return std::move(per_shard.front());
}

double ShardedVerticalIndex::SupportFraction(const Itemset& itemset) const {
  if (num_rows_ == 0) return 0.0;
  return static_cast<double>(CountSupport(itemset)) /
         static_cast<double>(num_rows_);
}

}  // namespace mining
}  // namespace frapp
