#include "frapp/mining/sharded_vertical_index.h"

#include <algorithm>

#include "frapp/common/parallel.h"
#include "frapp/common/tree_merge.h"

namespace frapp {
namespace mining {

namespace {

/// Candidates per counting task: small enough to load-balance a pass of a
/// few hundred candidates across workers, large enough to amortize the task
/// dispatch over the bitmap AND loops.
constexpr size_t kCandidateBlock = 32;

}  // namespace

ShardedVerticalIndex ShardedVerticalIndex::Build(
    const data::CategoricalTable& table, size_t num_shards,
    size_t num_threads) {
  // Counting needs no chunk alignment (alignment 1 splits even small tables
  // into the requested number of shards), so "one shard per quantum" is
  // resolved to a count first.
  const size_t resolved_shards =
      num_shards != 0 ? num_shards
                      : common::NumChunks(table.num_rows(),
                                          data::kShardAlignmentRows);
  const std::vector<data::RowRange> plan =
      data::ShardedTable::Plan(table.num_rows(), resolved_shards,
                               /*alignment=*/1);
  ShardedVerticalIndex index;
  index.num_rows_ = table.num_rows();
  index.shards_.resize(plan.size());
  common::ParallelForChunks(plan.size(), num_threads, [&](size_t s) {
    index.shards_[s] = VerticalIndex::BuildRange(table, plan[s]);
  });
  return index;
}

ShardedVerticalIndex ShardedVerticalIndex::FromShards(
    std::vector<VerticalIndex> shards) {
  ShardedVerticalIndex index;
  index.shards_ = std::move(shards);
  for (const VerticalIndex& shard : index.shards_) {
    index.num_rows_ += shard.num_rows();
  }
  return index;
}

void ShardedVerticalIndex::AppendShards(std::vector<VerticalIndex> shards) {
  for (VerticalIndex& shard : shards) {
    num_rows_ += shard.num_rows();
    shards_.push_back(std::move(shard));
  }
}

size_t ShardedVerticalIndex::CountSupport(const Itemset& itemset) const {
  size_t count = 0;
  for (const VerticalIndex& shard : shards_) count += shard.CountSupport(itemset);
  return count;
}

std::vector<size_t> ShardedVerticalIndex::CountSupports(
    const std::vector<Itemset>& itemsets, size_t num_threads) const {
  const size_t num_candidates = itemsets.size();
  if (num_candidates == 0) return {};
  if (shards_.empty()) return std::vector<size_t>(num_candidates, 0);

  // Fan the (shard x candidate-block) grid out: every task fills a disjoint
  // slice of one shard's count vector, so the writes are race-free and the
  // values are a pure function of the cell — deterministic at any worker
  // count.
  const size_t blocks = common::NumChunks(num_candidates, kCandidateBlock);
  std::vector<std::vector<size_t>> per_shard(
      shards_.size(), std::vector<size_t>(num_candidates, 0));
  common::ParallelForChunks(
      shards_.size() * blocks, num_threads, [&](size_t task) {
        const size_t s = task / blocks;
        const size_t first = (task % blocks) * kCandidateBlock;
        const size_t last = std::min(num_candidates, first + kCandidateBlock);
        const VerticalIndex& shard = shards_[s];
        std::vector<size_t>& counts = per_shard[s];
        for (size_t c = first; c < last; ++c) {
          counts[c] = shard.CountSupport(itemsets[c]);
        }
      });

  // Deterministic pairwise tree merge of the per-shard vectors — the same
  // reduce the frapp/dist coordinator runs over per-worker vectors.
  common::TreeMergeVectors(per_shard);
  return std::move(per_shard.front());
}

double ShardedVerticalIndex::SupportFraction(const Itemset& itemset) const {
  if (num_rows_ == 0) return 0.0;
  return static_cast<double>(CountSupport(itemset)) /
         static_cast<double>(num_rows_);
}

}  // namespace mining
}  // namespace frapp
