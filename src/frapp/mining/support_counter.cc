#include "frapp/mining/support_counter.h"

namespace frapp {
namespace mining {

size_t CountSupport(const data::CategoricalTable& table, const Itemset& itemset) {
  const size_t n = table.num_rows();
  if (itemset.empty()) return n;

  // Pull the column pointers once; the inner loop is then branch-light.
  const size_t k = itemset.size();
  std::vector<const uint8_t*> cols(k);
  std::vector<uint8_t> want(k);
  for (size_t j = 0; j < k; ++j) {
    cols[j] = table.Column(itemset.item(j).attribute).data();
    want[j] = static_cast<uint8_t>(itemset.item(j).category);
  }

  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    bool match = true;
    for (size_t j = 0; j < k; ++j) {
      if (cols[j][i] != want[j]) {
        match = false;
        break;
      }
    }
    count += match ? 1 : 0;
  }
  return count;
}

double SupportFraction(const data::CategoricalTable& table, const Itemset& itemset) {
  if (table.num_rows() == 0) return 0.0;
  return static_cast<double>(CountSupport(table, itemset)) /
         static_cast<double>(table.num_rows());
}

std::vector<size_t> CountSupports(const data::CategoricalTable& table,
                                  const std::vector<Itemset>& itemsets) {
  std::vector<size_t> counts(itemsets.size(), 0);
  // One pass per itemset is already cache-friendly on columnar storage and
  // keeps the code simple; the candidate lists in FRAPP's passes are small.
  for (size_t c = 0; c < itemsets.size(); ++c) {
    counts[c] = CountSupport(table, itemsets[c]);
  }
  return counts;
}

}  // namespace mining
}  // namespace frapp
