#include "frapp/mining/support_counter.h"

#include "frapp/mining/vertical_index.h"

namespace frapp {
namespace mining {

size_t CountSupport(const data::CategoricalTable& table, const Itemset& itemset) {
  const size_t n = table.num_rows();
  if (itemset.empty()) return n;

  // Pull the column pointers once; the inner loop is then branch-light.
  const size_t k = itemset.size();
  std::vector<const uint8_t*> cols(k);
  std::vector<uint8_t> want(k);
  for (size_t j = 0; j < k; ++j) {
    cols[j] = table.Column(itemset.item(j).attribute).data();
    want[j] = static_cast<uint8_t>(itemset.item(j).category);
  }

  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    bool match = true;
    for (size_t j = 0; j < k; ++j) {
      if (cols[j][i] != want[j]) {
        match = false;
        break;
      }
    }
    count += match ? 1 : 0;
  }
  return count;
}

double SupportFraction(const data::CategoricalTable& table, const Itemset& itemset) {
  if (table.num_rows() == 0) return 0.0;
  return static_cast<double>(CountSupport(table, itemset)) /
         static_cast<double>(table.num_rows());
}

std::vector<size_t> CountSupports(const data::CategoricalTable& table,
                                  const std::vector<Itemset>& itemsets) {
  // A candidate list can amortize the single-pass bitmap build: counting
  // via the index reads ~1/64th of the bytes a row scan does, but building
  // costs one scan of all M columns (plus zero-filling the bitmaps). The
  // scan work saved is proportional to the total item count of the list, so
  // the index pays off once that total clearly exceeds the attribute count.
  // Callers counting many lists over one table should hold a VerticalIndex
  // themselves (as the estimators do) instead of paying the build per call.
  size_t total_items = 0;
  for (const Itemset& itemset : itemsets) total_items += itemset.size();
  if (table.num_rows() >= 512 &&
      total_items >= 2 * table.num_attributes() + 4) {
    return VerticalIndex::Build(table).CountSupports(itemsets);
  }
  std::vector<size_t> counts(itemsets.size(), 0);
  for (size_t c = 0; c < itemsets.size(); ++c) {
    counts[c] = CountSupport(table, itemsets[c]);
  }
  return counts;
}

}  // namespace mining
}  // namespace frapp
