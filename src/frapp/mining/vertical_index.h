// Vertical (bitmap) representation of a categorical table for support
// counting.
//
// The horizontal layout answers "which items does row i contain?"; Apriori
// asks the transposed question, "which rows contain item x?", once per
// candidate per pass. This index materializes that transposition: one
// uint64_t bitset per (attribute, category) item, bit i set iff row i takes
// that category. A k-itemset's support is then the popcount of the word-wise
// AND of k bitmaps — 64 rows per cycle-ish instead of a branchy row scan —
// and a whole candidate list is counted without ever touching the rows
// again. Construction is a single pass over the columnar storage,
// O(N * M + items * N/64) time and items * N/8 bytes.

#ifndef FRAPP_MINING_VERTICAL_INDEX_H_
#define FRAPP_MINING_VERTICAL_INDEX_H_

#include <cstdint>
#include <vector>

#include "frapp/data/sharded_table.h"
#include "frapp/data/table.h"
#include "frapp/mining/itemset.h"

namespace frapp {
namespace mining {

/// Immutable per-item bitmap index over a CategoricalTable snapshot.
class VerticalIndex {
 public:
  /// Empty (zero-row, zero-item) index: the placeholder slot value of the
  /// sharded builders, overwritten by Build/BuildRange results.
  VerticalIndex() = default;

  /// Builds the index in one pass over `table`'s columns. `num_threads`
  /// parallelizes over attributes (0 = hardware concurrency); the result is
  /// bit-identical for every thread count.
  static VerticalIndex Build(const data::CategoricalTable& table,
                             size_t num_threads = 1);

  /// Builds an index over only rows [range.begin, range.end) of `table`,
  /// renumbered to local rows [0, range.size()): the per-shard index of the
  /// sharded counting path (see ShardedVerticalIndex). The range must lie
  /// within the table.
  static VerticalIndex BuildRange(const data::CategoricalTable& table,
                                  const data::RowRange& range,
                                  size_t num_threads = 1);

  size_t num_rows() const { return num_rows_; }
  size_t words_per_item() const { return words_; }

  /// Approximate heap footprint of the index — what a cache entry holding
  /// it charges against a byte budget.
  size_t MemoryBytes() const {
    return offsets_.capacity() * sizeof(size_t) +
           bits_.capacity() * sizeof(uint64_t);
  }

  /// The bitmap of item (attribute, category): `words_per_item()` words, bit
  /// i of word i/64 set iff row i supports the item. Unused tail bits are 0.
  const uint64_t* Bitmap(size_t attribute, size_t category) const {
    return bits_.data() + (offsets_[attribute] + category) * words_;
  }

  /// All bitmap planes, item-major: item slot p (attribute-major, category
  /// ascending) occupies words [p * words_per_item(), (p+1) *
  /// words_per_item()). The raw image a caller persists to reassemble the
  /// index later via FromRaw.
  const std::vector<uint64_t>& raw_bits() const { return bits_; }

  /// Reassembles an index from a persisted plane image. `offsets` is the
  /// first item slot of each attribute (as Build derives from the schema)
  /// and `bits` one `(num_rows + 63) / 64`-word plane per item, item-major —
  /// exactly what raw_bits() of an index with the same shape returns. The
  /// result is bit-identical to the index the image was read from.
  static VerticalIndex FromRaw(size_t num_rows, std::vector<size_t> offsets,
                               std::vector<uint64_t> bits);

  /// Support count of `itemset` via word-wise AND + popcount. The empty
  /// itemset is supported by every row.
  size_t CountSupport(const Itemset& itemset) const;

  /// Counts every candidate of an Apriori pass; no row data is touched.
  std::vector<size_t> CountSupports(const std::vector<Itemset>& itemsets) const;

  /// Support as a fraction of rows (0 for an empty table).
  double SupportFraction(const Itemset& itemset) const;

 private:
  size_t num_rows_ = 0;
  size_t words_ = 0;
  std::vector<size_t> offsets_;  // first item slot of each attribute
  std::vector<uint64_t> bits_;   // all bitmaps, item-major
};

}  // namespace mining
}  // namespace frapp

#endif  // FRAPP_MINING_VERTICAL_INDEX_H_
