#include "frapp/mining/kernels.h"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>

#include "frapp/common/cpuinfo.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FRAPP_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace frapp {
namespace mining {

namespace {

// ------------------------------------------------------------------ scalar --

uint64_t PopcountRangeScalar(const uint64_t* data, size_t words) {
  uint64_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    count += static_cast<uint64_t>(__builtin_popcountll(data[w]));
  }
  return count;
}

uint64_t IntersectPopcountScalar(const uint64_t* const* maps, size_t k,
                                 size_t words) {
  if (k == 1) return PopcountRangeScalar(maps[0], words);
  uint64_t count = 0;
  for (size_t w = 0; w < words; ++w) {
    uint64_t acc = maps[0][w] & maps[1][w];
    for (size_t j = 2; j < k; ++j) acc &= maps[j][w];
    count += static_cast<uint64_t>(__builtin_popcountll(acc));
  }
  return count;
}

// ------------------------------------------------------------- harley-seal --
//
// Carry-save-adder accumulation (Harley-Seal, as popularized by Mula,
// Kurz & Lemire, "Faster Population Counts"): sixteen words at a time are
// folded through a CSA network into bit-sliced counters ones/twos/fours/
// eights, and only the `sixteens` plane pays a popcount — 1 popcount per 16
// words instead of 16, traded for ~5 cheap logic ops per word. Pure integer
// arithmetic, so the result is exactly the scalar sum for any input; the
// win is on very long bitmap runs on hosts without wide SIMD.

/// One carry-save adder: (h, l) = a + b + c as (carry, sum) bit planes.
inline void CsaFold(uint64_t& h, uint64_t& l, uint64_t a, uint64_t b,
                    uint64_t c) {
  const uint64_t u = a ^ b;
  h = (a & b) | (u & c);
  l = u ^ c;
}

/// Harley-Seal fold over `words` words produced by `load(w)` (the w-th
/// word of the conceptual stream). Shared by the range and intersect
/// kernels so the accumulation network exists exactly once.
template <typename LoadWord>
inline uint64_t HarleySealFold(size_t words, LoadWord load) {
  uint64_t total = 0;
  uint64_t ones = 0, twos = 0, fours = 0, eights = 0;
  uint64_t twos_a, twos_b, fours_a, fours_b, eights_a, eights_b, sixteens;
  size_t w = 0;
  for (; w + 16 <= words; w += 16) {
    CsaFold(twos_a, ones, ones, load(w + 0), load(w + 1));
    CsaFold(twos_b, ones, ones, load(w + 2), load(w + 3));
    CsaFold(fours_a, twos, twos, twos_a, twos_b);
    CsaFold(twos_a, ones, ones, load(w + 4), load(w + 5));
    CsaFold(twos_b, ones, ones, load(w + 6), load(w + 7));
    CsaFold(fours_b, twos, twos, twos_a, twos_b);
    CsaFold(eights_a, fours, fours, fours_a, fours_b);
    CsaFold(twos_a, ones, ones, load(w + 8), load(w + 9));
    CsaFold(twos_b, ones, ones, load(w + 10), load(w + 11));
    CsaFold(fours_a, twos, twos, twos_a, twos_b);
    CsaFold(twos_a, ones, ones, load(w + 12), load(w + 13));
    CsaFold(twos_b, ones, ones, load(w + 14), load(w + 15));
    CsaFold(fours_b, twos, twos, twos_a, twos_b);
    CsaFold(eights_b, fours, fours, fours_a, fours_b);
    CsaFold(sixteens, eights, eights, eights_a, eights_b);
    total += static_cast<uint64_t>(__builtin_popcountll(sixteens));
  }
  total = 16 * total +
          8 * static_cast<uint64_t>(__builtin_popcountll(eights)) +
          4 * static_cast<uint64_t>(__builtin_popcountll(fours)) +
          2 * static_cast<uint64_t>(__builtin_popcountll(twos)) +
          static_cast<uint64_t>(__builtin_popcountll(ones));
  for (; w < words; ++w) {
    total += static_cast<uint64_t>(__builtin_popcountll(load(w)));
  }
  return total;
}

uint64_t PopcountRangeHarleySeal(const uint64_t* data, size_t words) {
  return HarleySealFold(words, [data](size_t w) { return data[w]; });
}

uint64_t IntersectPopcountHarleySeal(const uint64_t* const* maps, size_t k,
                                     size_t words) {
  if (k == 1) return PopcountRangeHarleySeal(maps[0], words);
  return HarleySealFold(words, [maps, k](size_t w) {
    uint64_t acc = maps[0][w] & maps[1][w];
    for (size_t j = 2; j < k; ++j) acc &= maps[j][w];
    return acc;
  });
}

#ifdef FRAPP_KERNELS_X86

// -------------------------------------------------------------------- avx2 --
//
// Popcount via the nibble-lookup (vpshufb) technique: each byte of the AND
// result is split into two nibbles whose set-bit counts come from a 16-entry
// in-register table, then vpsadbw folds the 32 byte-counts into 4 u64 lanes
// added into a vector accumulator. Exact integer arithmetic throughout; the
// u64 lane sums cannot overflow before words ~ 2^56.

__attribute__((target("avx2"))) inline __m256i Popcount256(__m256i v) {
  const __m256i lookup =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
                       0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lookup, lo),
                                         _mm256_shuffle_epi8(lookup, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline uint64_t HorizontalSum256(__m256i acc) {
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3];
}

__attribute__((target("avx2"))) uint64_t PopcountRangeAvx2(const uint64_t* data,
                                                           size_t words) {
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(data + w));
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  uint64_t count = HorizontalSum256(acc);
  for (; w < words; ++w) {
    count += static_cast<uint64_t>(__builtin_popcountll(data[w]));
  }
  return count;
}

__attribute__((target("avx2"))) uint64_t IntersectPopcountAvx2(
    const uint64_t* const* maps, size_t k, size_t words) {
  if (k == 1) return PopcountRangeAvx2(maps[0], words);
  __m256i acc = _mm256_setzero_si256();
  size_t w = 0;
  for (; w + 4 <= words; w += 4) {
    __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(maps[0] + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(maps[1] + w)));
    for (size_t j = 2; j < k; ++j) {
      v = _mm256_and_si256(
          v, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(maps[j] + w)));
    }
    acc = _mm256_add_epi64(acc, Popcount256(v));
  }
  uint64_t count = HorizontalSum256(acc);
  for (; w < words; ++w) {
    uint64_t word = maps[0][w] & maps[1][w];
    for (size_t j = 2; j < k; ++j) word &= maps[j][w];
    count += static_cast<uint64_t>(__builtin_popcountll(word));
  }
  return count;
}

// ------------------------------------------------------------------ avx512 --
//
// Native per-lane popcount (vpopcntq, AVX-512 VPOPCNTDQ) over 512-bit AND
// chains; the sub-8-word tail is handled with a masked load so the whole
// fold stays in vector registers.
//
// GCC's avx512fintrin.h trips -Wmaybe-uninitialized on every maskz load
// (PR105593: the zero-fill source operand looks uninitialized after
// inlining); masked-out lanes are zeroed by the instruction, so silence it
// for these bodies only.

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx512f,avx512vpopcntdq"))) uint64_t PopcountRangeAvx512(
    const uint64_t* data, size_t words) {
  __m512i acc = _mm512_setzero_si512();
  size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    acc = _mm512_add_epi64(acc,
                           _mm512_popcnt_epi64(_mm512_loadu_si512(data + w)));
  }
  const size_t tail = words - w;
  if (tail != 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << tail) - 1u);
    acc = _mm512_add_epi64(
        acc, _mm512_popcnt_epi64(_mm512_maskz_loadu_epi64(mask, data + w)));
  }
  return static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
}

__attribute__((target("avx512f,avx512vpopcntdq"))) uint64_t
IntersectPopcountAvx512(const uint64_t* const* maps, size_t k, size_t words) {
  if (k == 1) return PopcountRangeAvx512(maps[0], words);
  __m512i acc = _mm512_setzero_si512();
  size_t w = 0;
  for (; w + 8 <= words; w += 8) {
    __m512i v = _mm512_and_si512(_mm512_loadu_si512(maps[0] + w),
                                 _mm512_loadu_si512(maps[1] + w));
    for (size_t j = 2; j < k; ++j) {
      v = _mm512_and_si512(v, _mm512_loadu_si512(maps[j] + w));
    }
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  const size_t tail = words - w;
  if (tail != 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << tail) - 1u);
    __m512i v = _mm512_and_si512(_mm512_maskz_loadu_epi64(mask, maps[0] + w),
                                 _mm512_maskz_loadu_epi64(mask, maps[1] + w));
    for (size_t j = 2; j < k; ++j) {
      v = _mm512_and_si512(v, _mm512_maskz_loadu_epi64(mask, maps[j] + w));
    }
    acc = _mm512_add_epi64(acc, _mm512_popcnt_epi64(v));
  }
  return static_cast<uint64_t>(_mm512_reduce_add_epi64(acc));
}

#pragma GCC diagnostic pop

#endif  // FRAPP_KERNELS_X86

constexpr KernelTable kScalarTable = {IntersectPopcountScalar,
                                      PopcountRangeScalar,
                                      KernelLevel::kScalar};
constexpr KernelTable kHarleySealTable = {IntersectPopcountHarleySeal,
                                          PopcountRangeHarleySeal,
                                          KernelLevel::kHarleySeal};
#ifdef FRAPP_KERNELS_X86
constexpr KernelTable kAvx2Table = {IntersectPopcountAvx2, PopcountRangeAvx2,
                                    KernelLevel::kAvx2};
constexpr KernelTable kAvx512Table = {IntersectPopcountAvx512,
                                      PopcountRangeAvx512,
                                      KernelLevel::kAvx512};
#endif

/// The resolved default table (dispatch decision applied once).
std::once_flag g_resolve_once;
/// Current active table; swapped only by the test-only override.
std::atomic<const KernelTable*> g_active{nullptr};

const KernelTable* ResolveDefaultTable() {
  const char* forced_env = std::getenv("FRAPP_FORCE_KERNEL");
  std::optional<KernelLevel> forced;
  if (forced_env != nullptr && forced_env[0] != '\0') {
    forced = ParseKernelLevelName(forced_env);
    if (!forced.has_value()) {
      std::cerr << "frapp: ignoring unknown FRAPP_FORCE_KERNEL value '"
                << forced_env << "' (want scalar|harley-seal|avx2|avx512)\n";
    } else if (!KernelLevelSupported(*forced)) {
      std::cerr << "frapp: FRAPP_FORCE_KERNEL=" << forced_env
                << " is not runnable on this host; falling back to "
                << KernelLevelName(BestSupportedLevel()) << "\n";
    }
  }
  return &KernelsForLevel(internal::ResolveKernelLevel(forced));
}

}  // namespace

const char* KernelLevelName(KernelLevel level) {
  switch (level) {
    case KernelLevel::kScalar:
      return "scalar";
    case KernelLevel::kAvx2:
      return "avx2";
    case KernelLevel::kAvx512:
      return "avx512";
    case KernelLevel::kHarleySeal:
      return "harley-seal";
  }
  return "unknown";
}

std::optional<KernelLevel> ParseKernelLevelName(const std::string& name) {
  if (name == "scalar") return KernelLevel::kScalar;
  if (name == "avx2") return KernelLevel::kAvx2;
  if (name == "avx512") return KernelLevel::kAvx512;
  if (name == "harley-seal") return KernelLevel::kHarleySeal;
  return std::nullopt;
}

bool KernelLevelSupported(KernelLevel level) {
  if (level == KernelLevel::kScalar) return true;
  if (level == KernelLevel::kHarleySeal) return true;  // portable C++
#ifdef FRAPP_KERNELS_X86
  const common::CpuFeatures& features = common::GetCpuInfo().features;
  if (level == KernelLevel::kAvx2) return features.avx2;
  if (level == KernelLevel::kAvx512) {
    return features.avx512f && features.avx512vpopcntdq;
  }
#endif
  return false;
}

KernelLevel BestSupportedLevel() {
  if (KernelLevelSupported(KernelLevel::kAvx512)) return KernelLevel::kAvx512;
  if (KernelLevelSupported(KernelLevel::kAvx2)) return KernelLevel::kAvx2;
  // Without wide SIMD the accumulated-popcount rung beats the plain word
  // loop on long runs and ties it on short ones.
  return KernelLevel::kHarleySeal;
}

const KernelTable& KernelsForLevel(KernelLevel level) {
#ifdef FRAPP_KERNELS_X86
  if (level == KernelLevel::kAvx512) return kAvx512Table;
  if (level == KernelLevel::kAvx2) return kAvx2Table;
#endif
  if (level == KernelLevel::kHarleySeal) return kHarleySealTable;
  return kScalarTable;
}

const KernelTable& ActiveKernels() {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table != nullptr) return *table;
  std::call_once(g_resolve_once, [] {
    g_active.store(ResolveDefaultTable(), std::memory_order_release);
  });
  return *g_active.load(std::memory_order_acquire);
}

namespace internal {

KernelLevel ResolveKernelLevel(std::optional<KernelLevel> forced) {
  if (forced.has_value() && KernelLevelSupported(*forced)) return *forced;
  return BestSupportedLevel();
}

void SetActiveKernelsForTest(KernelLevel level) {
  g_active.store(&KernelsForLevel(level), std::memory_order_release);
}

void ResetActiveKernelsForTest() {
  g_active.store(ResolveDefaultTable(), std::memory_order_release);
}

}  // namespace internal

}  // namespace mining
}  // namespace frapp
