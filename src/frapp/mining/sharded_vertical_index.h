// Sharded vertical bitmap index: the support-counting substrate of the
// parallel perturb -> index -> count pipeline.
//
// A k-itemset's support count over a row-partitioned table is the sum of its
// per-shard counts — integer addition, so ANY shard partition and ANY
// evaluation order yields the same totals as the monolithic index, bit for
// bit. That makes an Apriori candidate-counting pass embarrassingly
// parallel: the (shard x candidate-block) grid is fanned out on
// common::ParallelForChunks, each cell writing a disjoint slice of its
// shard's count vector, and the per-shard vectors are combined by a
// deterministic pairwise tree merge. Shards also let the index be built from
// independently perturbed shard tables whose rows are dropped immediately
// after indexing (O(shard) peak memory, see frapp/pipeline).

#ifndef FRAPP_MINING_SHARDED_VERTICAL_INDEX_H_
#define FRAPP_MINING_SHARDED_VERTICAL_INDEX_H_

#include <cstddef>
#include <vector>

#include "frapp/data/sharded_table.h"
#include "frapp/data/table.h"
#include "frapp/mining/itemset.h"
#include "frapp/mining/vertical_index.h"

namespace frapp {
namespace mining {

/// Immutable collection of per-shard VerticalIndexes over a row partition of
/// one table. Counting answers are independent of the shard count and of the
/// thread count.
class ShardedVerticalIndex {
 public:
  /// Builds per-shard indexes over an even `num_shards`-way row split of
  /// `table` (alignment-free: counting needs no chunk alignment). 0 shards
  /// means one shard per seeded-chunk quantum. `num_threads` parallelizes
  /// the shard builds (0 = hardware concurrency).
  static ShardedVerticalIndex Build(const data::CategoricalTable& table,
                                    size_t num_shards, size_t num_threads = 1);

  /// Assembles from pre-built shard indexes (the pipeline path, where each
  /// shard was indexed right after perturbation). Shard order must follow
  /// row order; totals are independent of it regardless.
  static ShardedVerticalIndex FromShards(std::vector<VerticalIndex> shards);

  /// Appends more row-partition shards (the dist fault-recovery path: a
  /// survivor ingests a dead worker's range on top of its own). Counting
  /// stays the integer sum over ALL shards, so appended coverage merges
  /// bit-identically into every subsequent count.
  void AppendShards(std::vector<VerticalIndex> shards);

  size_t num_rows() const { return num_rows_; }
  size_t num_shards() const { return shards_.size(); }
  const VerticalIndex& shard(size_t s) const { return shards_[s]; }

  /// Total support count of one itemset (sum of per-shard counts).
  size_t CountSupport(const Itemset& itemset) const;

  /// Counts a whole candidate list, fanning the (shard x candidate-block)
  /// grid out over `num_threads` workers and tree-merging the per-shard
  /// vectors. Bit-identical to the monolithic count for every shard and
  /// thread count.
  std::vector<size_t> CountSupports(const std::vector<Itemset>& itemsets,
                                    size_t num_threads = 1) const;

  /// Support as a fraction of all rows (0 for an empty table).
  double SupportFraction(const Itemset& itemset) const;

 private:
  ShardedVerticalIndex() = default;

  size_t num_rows_ = 0;
  std::vector<VerticalIndex> shards_;
};

}  // namespace mining
}  // namespace frapp

#endif  // FRAPP_MINING_SHARDED_VERTICAL_INDEX_H_
