#include "frapp/mining/rules.h"

#include <algorithm>
#include <unordered_map>

namespace frapp {
namespace mining {

std::string AssociationRule::ToString(const data::CategoricalSchema& schema) const {
  std::string out = antecedent.ToString(schema);
  out += " => ";
  out += consequent.ToString(schema);
  return out;
}

StatusOr<std::vector<AssociationRule>> GenerateAssociationRules(
    const AprioriResult& result, const RuleOptions& options,
    RuleGenStats* stats) {
  RuleGenStats local;

  // Support lookup across all frequent itemsets.
  std::unordered_map<Itemset, double, Itemset::Hash> support;
  for (const auto& level : result.by_length) {
    for (const FrequentItemset& f : level) support[f.itemset] = f.support;
  }

  std::vector<AssociationRule> rules;
  for (const auto& level : result.by_length) {
    for (const FrequentItemset& f : level) {
      const std::vector<Item>& items = f.itemset.items();
      const size_t k = items.size();
      if (k < 2) continue;
      if (k >= 64) {
        return Status::InvalidArgument(
            "rule generation: itemset of length " + std::to_string(k) +
            " exceeds the split enumeration bound");
      }
      ++local.itemsets_considered;
      if (f.support < options.min_support) continue;
      // Enumerate non-empty proper subsets as antecedents via bitmask.
      for (uint64_t mask = 1; mask + 1 < (1ull << k); ++mask) {
        ++local.splits_evaluated;
        std::vector<Item> lhs, rhs;
        for (size_t i = 0; i < k; ++i) {
          ((mask >> i) & 1u ? lhs : rhs).push_back(items[i]);
        }
        const Itemset antecedent = Itemset::FromSortedUnchecked(std::move(lhs));
        auto it = support.find(antecedent);
        if (it == support.end() || it->second <= 0.0) {
          ++local.missing_antecedents;
          continue;
        }
        const double confidence = f.support / it->second;
        if (confidence >= options.min_confidence) {
          rules.push_back(AssociationRule{
              antecedent, Itemset::FromSortedUnchecked(std::move(rhs)),
              f.support, confidence});
        }
      }
    }
  }
  // Deterministic total order: the (antecedent, consequent) tiebreak pins
  // the order of equal-score rules, so reports diff clean across runs and
  // the serve cache's rule responses are byte-stable.
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) return a.confidence > b.confidence;
              if (a.support != b.support) return a.support > b.support;
              if (a.antecedent != b.antecedent) return a.antecedent < b.antecedent;
              return a.consequent < b.consequent;
            });
  local.emitted = rules.size();
  if (stats != nullptr) *stats = local;
  return rules;
}

std::vector<AssociationRule> GenerateRules(const AprioriResult& result,
                                           double min_confidence) {
  RuleOptions options;
  options.min_confidence = min_confidence;
  // Infallible for any minable result: lengths sit far under the split
  // enumeration bound (the counting caps upstream stop at 2^20 patterns).
  auto rules = GenerateAssociationRules(result, options);
  return rules.ok() ? *std::move(rules) : std::vector<AssociationRule>{};
}

}  // namespace mining
}  // namespace frapp
