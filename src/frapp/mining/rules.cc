#include "frapp/mining/rules.h"

#include <algorithm>
#include <unordered_map>

namespace frapp {
namespace mining {

std::string AssociationRule::ToString(const data::CategoricalSchema& schema) const {
  std::string out = antecedent.ToString(schema);
  out += " => ";
  out += consequent.ToString(schema);
  return out;
}

std::vector<AssociationRule> GenerateRules(const AprioriResult& result,
                                           double min_confidence) {
  // Support lookup across all frequent itemsets.
  std::unordered_map<Itemset, double, Itemset::Hash> support;
  for (const auto& level : result.by_length) {
    for (const FrequentItemset& f : level) support[f.itemset] = f.support;
  }

  std::vector<AssociationRule> rules;
  for (const auto& level : result.by_length) {
    for (const FrequentItemset& f : level) {
      const std::vector<Item>& items = f.itemset.items();
      const size_t k = items.size();
      if (k < 2) continue;
      // Enumerate non-empty proper subsets as antecedents via bitmask.
      for (uint32_t mask = 1; mask + 1 < (1u << k); ++mask) {
        std::vector<Item> lhs, rhs;
        for (size_t i = 0; i < k; ++i) {
          ((mask >> i) & 1u ? lhs : rhs).push_back(items[i]);
        }
        const Itemset antecedent = Itemset::FromSortedUnchecked(std::move(lhs));
        auto it = support.find(antecedent);
        if (it == support.end() || it->second <= 0.0) continue;
        const double confidence = f.support / it->second;
        if (confidence >= min_confidence) {
          rules.push_back(AssociationRule{
              antecedent, Itemset::FromSortedUnchecked(std::move(rhs)), f.support,
              confidence});
        }
      }
    }
  }
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) return a.confidence > b.confidence;
              return a.support > b.support;
            });
  return rules;
}

}  // namespace mining
}  // namespace frapp
