# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-tsan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-tsan/frapp_tests[1]_include.cmake")
add_test(examples.quickstart_smoke "/root/repo/build-tsan/quickstart")
set_tests_properties(examples.quickstart_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;85;add_test;/root/repo/CMakeLists.txt;0;")
