file(REMOVE_RECURSE
  "CMakeFiles/perturbation_benchmark.dir/bench/perturbation_benchmark.cc.o"
  "CMakeFiles/perturbation_benchmark.dir/bench/perturbation_benchmark.cc.o.d"
  "perturbation_benchmark"
  "perturbation_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perturbation_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
