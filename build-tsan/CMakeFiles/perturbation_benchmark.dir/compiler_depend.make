# Empty compiler generated dependencies file for perturbation_benchmark.
# This may be replaced when dependencies are built.
