file(REMOVE_RECURSE
  "CMakeFiles/fig2_health_errors.dir/bench/fig2_health_errors.cc.o"
  "CMakeFiles/fig2_health_errors.dir/bench/fig2_health_errors.cc.o.d"
  "fig2_health_errors"
  "fig2_health_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_health_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
