# Empty compiler generated dependencies file for fig2_health_errors.
# This may be replaced when dependencies are built.
