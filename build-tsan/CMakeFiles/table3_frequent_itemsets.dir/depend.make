# Empty dependencies file for table3_frequent_itemsets.
# This may be replaced when dependencies are built.
