file(REMOVE_RECURSE
  "CMakeFiles/table3_frequent_itemsets.dir/bench/table3_frequent_itemsets.cc.o"
  "CMakeFiles/table3_frequent_itemsets.dir/bench/table3_frequent_itemsets.cc.o.d"
  "table3_frequent_itemsets"
  "table3_frequent_itemsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_frequent_itemsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
