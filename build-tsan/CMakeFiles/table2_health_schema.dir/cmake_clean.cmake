file(REMOVE_RECURSE
  "CMakeFiles/table2_health_schema.dir/bench/table2_health_schema.cc.o"
  "CMakeFiles/table2_health_schema.dir/bench/table2_health_schema.cc.o.d"
  "table2_health_schema"
  "table2_health_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_health_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
