# Empty compiler generated dependencies file for table2_health_schema.
# This may be replaced when dependencies are built.
