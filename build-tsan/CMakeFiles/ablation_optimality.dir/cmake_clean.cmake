file(REMOVE_RECURSE
  "CMakeFiles/ablation_optimality.dir/bench/ablation_optimality.cc.o"
  "CMakeFiles/ablation_optimality.dir/bench/ablation_optimality.cc.o.d"
  "ablation_optimality"
  "ablation_optimality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
