# Empty compiler generated dependencies file for ablation_optimality.
# This may be replaced when dependencies are built.
