file(REMOVE_RECURSE
  "CMakeFiles/fig3_randomization.dir/bench/fig3_randomization.cc.o"
  "CMakeFiles/fig3_randomization.dir/bench/fig3_randomization.cc.o.d"
  "fig3_randomization"
  "fig3_randomization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_randomization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
