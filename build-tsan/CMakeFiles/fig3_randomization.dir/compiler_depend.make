# Empty compiler generated dependencies file for fig3_randomization.
# This may be replaced when dependencies are built.
