# Empty compiler generated dependencies file for fig4_condition_numbers.
# This may be replaced when dependencies are built.
