file(REMOVE_RECURSE
  "CMakeFiles/fig4_condition_numbers.dir/bench/fig4_condition_numbers.cc.o"
  "CMakeFiles/fig4_condition_numbers.dir/bench/fig4_condition_numbers.cc.o.d"
  "fig4_condition_numbers"
  "fig4_condition_numbers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_condition_numbers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
