file(REMOVE_RECURSE
  "CMakeFiles/table1_census_schema.dir/bench/table1_census_schema.cc.o"
  "CMakeFiles/table1_census_schema.dir/bench/table1_census_schema.cc.o.d"
  "table1_census_schema"
  "table1_census_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_census_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
