# Empty dependencies file for table1_census_schema.
# This may be replaced when dependencies are built.
