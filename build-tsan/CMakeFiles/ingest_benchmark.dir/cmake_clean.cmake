file(REMOVE_RECURSE
  "CMakeFiles/ingest_benchmark.dir/bench/ingest_benchmark.cc.o"
  "CMakeFiles/ingest_benchmark.dir/bench/ingest_benchmark.cc.o.d"
  "ingest_benchmark"
  "ingest_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ingest_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
