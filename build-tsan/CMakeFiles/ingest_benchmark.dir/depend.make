# Empty dependencies file for ingest_benchmark.
# This may be replaced when dependencies are built.
