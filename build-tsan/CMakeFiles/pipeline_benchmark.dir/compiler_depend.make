# Empty compiler generated dependencies file for pipeline_benchmark.
# This may be replaced when dependencies are built.
