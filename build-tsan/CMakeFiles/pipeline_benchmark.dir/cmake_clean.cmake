file(REMOVE_RECURSE
  "CMakeFiles/pipeline_benchmark.dir/bench/pipeline_benchmark.cc.o"
  "CMakeFiles/pipeline_benchmark.dir/bench/pipeline_benchmark.cc.o.d"
  "pipeline_benchmark"
  "pipeline_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
