file(REMOVE_RECURSE
  "CMakeFiles/frapp_cli.dir/tools/frapp_cli.cc.o"
  "CMakeFiles/frapp_cli.dir/tools/frapp_cli.cc.o.d"
  "frapp_cli"
  "frapp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frapp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
