# Empty compiler generated dependencies file for frapp_cli.
# This may be replaced when dependencies are built.
