file(REMOVE_RECURSE
  "CMakeFiles/reconstruction_benchmark.dir/bench/reconstruction_benchmark.cc.o"
  "CMakeFiles/reconstruction_benchmark.dir/bench/reconstruction_benchmark.cc.o.d"
  "reconstruction_benchmark"
  "reconstruction_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reconstruction_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
