# Empty dependencies file for reconstruction_benchmark.
# This may be replaced when dependencies are built.
