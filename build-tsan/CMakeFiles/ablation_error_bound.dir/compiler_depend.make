# Empty compiler generated dependencies file for ablation_error_bound.
# This may be replaced when dependencies are built.
