file(REMOVE_RECURSE
  "CMakeFiles/ablation_error_bound.dir/bench/ablation_error_bound.cc.o"
  "CMakeFiles/ablation_error_bound.dir/bench/ablation_error_bound.cc.o.d"
  "ablation_error_bound"
  "ablation_error_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_error_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
