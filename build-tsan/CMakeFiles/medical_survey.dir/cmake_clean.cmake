file(REMOVE_RECURSE
  "CMakeFiles/medical_survey.dir/examples/medical_survey.cpp.o"
  "CMakeFiles/medical_survey.dir/examples/medical_survey.cpp.o.d"
  "medical_survey"
  "medical_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medical_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
