# Empty dependencies file for medical_survey.
# This may be replaced when dependencies are built.
