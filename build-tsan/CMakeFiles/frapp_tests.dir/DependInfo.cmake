
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/combinatorics_test.cc" "CMakeFiles/frapp_tests.dir/tests/common/combinatorics_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/common/combinatorics_test.cc.o.d"
  "/root/repo/tests/common/status_test.cc" "CMakeFiles/frapp_tests.dir/tests/common/status_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/common/status_test.cc.o.d"
  "/root/repo/tests/common/statusor_test.cc" "CMakeFiles/frapp_tests.dir/tests/common/statusor_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/common/statusor_test.cc.o.d"
  "/root/repo/tests/common/string_util_test.cc" "CMakeFiles/frapp_tests.dir/tests/common/string_util_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/common/string_util_test.cc.o.d"
  "/root/repo/tests/core/cut_paste_scheme_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/cut_paste_scheme_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/cut_paste_scheme_test.cc.o.d"
  "/root/repo/tests/core/designer_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/designer_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/designer_test.cc.o.d"
  "/root/repo/tests/core/error_analysis_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/error_analysis_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/error_analysis_test.cc.o.d"
  "/root/repo/tests/core/gamma_diagonal_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/gamma_diagonal_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/gamma_diagonal_test.cc.o.d"
  "/root/repo/tests/core/gamma_perturb_plan_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/gamma_perturb_plan_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/gamma_perturb_plan_test.cc.o.d"
  "/root/repo/tests/core/independent_column_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/independent_column_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/independent_column_test.cc.o.d"
  "/root/repo/tests/core/mask_scheme_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/mask_scheme_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/mask_scheme_test.cc.o.d"
  "/root/repo/tests/core/mechanism_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/mechanism_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/mechanism_test.cc.o.d"
  "/root/repo/tests/core/naive_perturber_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/naive_perturber_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/naive_perturber_test.cc.o.d"
  "/root/repo/tests/core/perturber_property_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/perturber_property_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/perturber_property_test.cc.o.d"
  "/root/repo/tests/core/privacy_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/privacy_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/privacy_test.cc.o.d"
  "/root/repo/tests/core/randomized_gamma_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/randomized_gamma_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/randomized_gamma_test.cc.o.d"
  "/root/repo/tests/core/reconstructor_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/reconstructor_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/reconstructor_test.cc.o.d"
  "/root/repo/tests/core/subset_reconstruction_test.cc" "CMakeFiles/frapp_tests.dir/tests/core/subset_reconstruction_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/core/subset_reconstruction_test.cc.o.d"
  "/root/repo/tests/data/boolean_vertical_index_test.cc" "CMakeFiles/frapp_tests.dir/tests/data/boolean_vertical_index_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/data/boolean_vertical_index_test.cc.o.d"
  "/root/repo/tests/data/boolean_view_test.cc" "CMakeFiles/frapp_tests.dir/tests/data/boolean_view_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/data/boolean_view_test.cc.o.d"
  "/root/repo/tests/data/csv_test.cc" "CMakeFiles/frapp_tests.dir/tests/data/csv_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/data/csv_test.cc.o.d"
  "/root/repo/tests/data/datasets_test.cc" "CMakeFiles/frapp_tests.dir/tests/data/datasets_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/data/datasets_test.cc.o.d"
  "/root/repo/tests/data/discretize_test.cc" "CMakeFiles/frapp_tests.dir/tests/data/discretize_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/data/discretize_test.cc.o.d"
  "/root/repo/tests/data/domain_index_test.cc" "CMakeFiles/frapp_tests.dir/tests/data/domain_index_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/data/domain_index_test.cc.o.d"
  "/root/repo/tests/data/label_interner_test.cc" "CMakeFiles/frapp_tests.dir/tests/data/label_interner_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/data/label_interner_test.cc.o.d"
  "/root/repo/tests/data/schema_test.cc" "CMakeFiles/frapp_tests.dir/tests/data/schema_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/data/schema_test.cc.o.d"
  "/root/repo/tests/data/shard_io_test.cc" "CMakeFiles/frapp_tests.dir/tests/data/shard_io_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/data/shard_io_test.cc.o.d"
  "/root/repo/tests/data/sharded_boolean_vertical_index_test.cc" "CMakeFiles/frapp_tests.dir/tests/data/sharded_boolean_vertical_index_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/data/sharded_boolean_vertical_index_test.cc.o.d"
  "/root/repo/tests/data/sharded_table_test.cc" "CMakeFiles/frapp_tests.dir/tests/data/sharded_table_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/data/sharded_table_test.cc.o.d"
  "/root/repo/tests/data/synthetic_test.cc" "CMakeFiles/frapp_tests.dir/tests/data/synthetic_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/data/synthetic_test.cc.o.d"
  "/root/repo/tests/data/table_test.cc" "CMakeFiles/frapp_tests.dir/tests/data/table_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/data/table_test.cc.o.d"
  "/root/repo/tests/eval/experiment_test.cc" "CMakeFiles/frapp_tests.dir/tests/eval/experiment_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/eval/experiment_test.cc.o.d"
  "/root/repo/tests/eval/metrics_test.cc" "CMakeFiles/frapp_tests.dir/tests/eval/metrics_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/eval/metrics_test.cc.o.d"
  "/root/repo/tests/eval/reporting_test.cc" "CMakeFiles/frapp_tests.dir/tests/eval/reporting_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/eval/reporting_test.cc.o.d"
  "/root/repo/tests/integration/health_pipeline_test.cc" "CMakeFiles/frapp_tests.dir/tests/integration/health_pipeline_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/integration/health_pipeline_test.cc.o.d"
  "/root/repo/tests/integration/pipeline_test.cc" "CMakeFiles/frapp_tests.dir/tests/integration/pipeline_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/integration/pipeline_test.cc.o.d"
  "/root/repo/tests/linalg/condition_test.cc" "CMakeFiles/frapp_tests.dir/tests/linalg/condition_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/linalg/condition_test.cc.o.d"
  "/root/repo/tests/linalg/jacobi_eigen_test.cc" "CMakeFiles/frapp_tests.dir/tests/linalg/jacobi_eigen_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/linalg/jacobi_eigen_test.cc.o.d"
  "/root/repo/tests/linalg/kronecker_test.cc" "CMakeFiles/frapp_tests.dir/tests/linalg/kronecker_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/linalg/kronecker_test.cc.o.d"
  "/root/repo/tests/linalg/lu_test.cc" "CMakeFiles/frapp_tests.dir/tests/linalg/lu_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/linalg/lu_test.cc.o.d"
  "/root/repo/tests/linalg/matrix_test.cc" "CMakeFiles/frapp_tests.dir/tests/linalg/matrix_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/linalg/matrix_test.cc.o.d"
  "/root/repo/tests/linalg/svd_test.cc" "CMakeFiles/frapp_tests.dir/tests/linalg/svd_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/linalg/svd_test.cc.o.d"
  "/root/repo/tests/linalg/uniform_mixture_test.cc" "CMakeFiles/frapp_tests.dir/tests/linalg/uniform_mixture_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/linalg/uniform_mixture_test.cc.o.d"
  "/root/repo/tests/linalg/vector_test.cc" "CMakeFiles/frapp_tests.dir/tests/linalg/vector_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/linalg/vector_test.cc.o.d"
  "/root/repo/tests/mining/apriori_test.cc" "CMakeFiles/frapp_tests.dir/tests/mining/apriori_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/mining/apriori_test.cc.o.d"
  "/root/repo/tests/mining/itemset_test.cc" "CMakeFiles/frapp_tests.dir/tests/mining/itemset_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/mining/itemset_test.cc.o.d"
  "/root/repo/tests/mining/rules_test.cc" "CMakeFiles/frapp_tests.dir/tests/mining/rules_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/mining/rules_test.cc.o.d"
  "/root/repo/tests/mining/sharded_vertical_index_test.cc" "CMakeFiles/frapp_tests.dir/tests/mining/sharded_vertical_index_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/mining/sharded_vertical_index_test.cc.o.d"
  "/root/repo/tests/mining/support_counter_test.cc" "CMakeFiles/frapp_tests.dir/tests/mining/support_counter_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/mining/support_counter_test.cc.o.d"
  "/root/repo/tests/mining/vertical_index_test.cc" "CMakeFiles/frapp_tests.dir/tests/mining/vertical_index_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/mining/vertical_index_test.cc.o.d"
  "/root/repo/tests/pipeline/prefetch_source_test.cc" "CMakeFiles/frapp_tests.dir/tests/pipeline/prefetch_source_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/pipeline/prefetch_source_test.cc.o.d"
  "/root/repo/tests/pipeline/privacy_pipeline_test.cc" "CMakeFiles/frapp_tests.dir/tests/pipeline/privacy_pipeline_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/pipeline/privacy_pipeline_test.cc.o.d"
  "/root/repo/tests/pipeline/table_source_test.cc" "CMakeFiles/frapp_tests.dir/tests/pipeline/table_source_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/pipeline/table_source_test.cc.o.d"
  "/root/repo/tests/random/alias_sampler_test.cc" "CMakeFiles/frapp_tests.dir/tests/random/alias_sampler_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/random/alias_sampler_test.cc.o.d"
  "/root/repo/tests/random/distributions_test.cc" "CMakeFiles/frapp_tests.dir/tests/random/distributions_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/random/distributions_test.cc.o.d"
  "/root/repo/tests/random/rng_test.cc" "CMakeFiles/frapp_tests.dir/tests/random/rng_test.cc.o" "gcc" "CMakeFiles/frapp_tests.dir/tests/random/rng_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/CMakeFiles/frapp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
