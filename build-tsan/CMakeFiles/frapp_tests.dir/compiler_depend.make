# Empty compiler generated dependencies file for frapp_tests.
# This may be replaced when dependencies are built.
