# Empty dependencies file for apriori_benchmark.
# This may be replaced when dependencies are built.
