file(REMOVE_RECURSE
  "CMakeFiles/apriori_benchmark.dir/bench/apriori_benchmark.cc.o"
  "CMakeFiles/apriori_benchmark.dir/bench/apriori_benchmark.cc.o.d"
  "apriori_benchmark"
  "apriori_benchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apriori_benchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
