file(REMOVE_RECURSE
  "libfrapp.a"
)
