
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frapp/common/combinatorics.cc" "CMakeFiles/frapp.dir/src/frapp/common/combinatorics.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/common/combinatorics.cc.o.d"
  "/root/repo/src/frapp/common/logging.cc" "CMakeFiles/frapp.dir/src/frapp/common/logging.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/common/logging.cc.o.d"
  "/root/repo/src/frapp/common/status.cc" "CMakeFiles/frapp.dir/src/frapp/common/status.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/common/status.cc.o.d"
  "/root/repo/src/frapp/common/string_util.cc" "CMakeFiles/frapp.dir/src/frapp/common/string_util.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/common/string_util.cc.o.d"
  "/root/repo/src/frapp/core/cut_paste_scheme.cc" "CMakeFiles/frapp.dir/src/frapp/core/cut_paste_scheme.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/core/cut_paste_scheme.cc.o.d"
  "/root/repo/src/frapp/core/designer.cc" "CMakeFiles/frapp.dir/src/frapp/core/designer.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/core/designer.cc.o.d"
  "/root/repo/src/frapp/core/error_analysis.cc" "CMakeFiles/frapp.dir/src/frapp/core/error_analysis.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/core/error_analysis.cc.o.d"
  "/root/repo/src/frapp/core/gamma_diagonal.cc" "CMakeFiles/frapp.dir/src/frapp/core/gamma_diagonal.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/core/gamma_diagonal.cc.o.d"
  "/root/repo/src/frapp/core/independent_column_scheme.cc" "CMakeFiles/frapp.dir/src/frapp/core/independent_column_scheme.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/core/independent_column_scheme.cc.o.d"
  "/root/repo/src/frapp/core/mask_scheme.cc" "CMakeFiles/frapp.dir/src/frapp/core/mask_scheme.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/core/mask_scheme.cc.o.d"
  "/root/repo/src/frapp/core/mechanism.cc" "CMakeFiles/frapp.dir/src/frapp/core/mechanism.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/core/mechanism.cc.o.d"
  "/root/repo/src/frapp/core/naive_perturber.cc" "CMakeFiles/frapp.dir/src/frapp/core/naive_perturber.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/core/naive_perturber.cc.o.d"
  "/root/repo/src/frapp/core/perturbation_matrix.cc" "CMakeFiles/frapp.dir/src/frapp/core/perturbation_matrix.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/core/perturbation_matrix.cc.o.d"
  "/root/repo/src/frapp/core/privacy.cc" "CMakeFiles/frapp.dir/src/frapp/core/privacy.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/core/privacy.cc.o.d"
  "/root/repo/src/frapp/core/randomized_gamma.cc" "CMakeFiles/frapp.dir/src/frapp/core/randomized_gamma.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/core/randomized_gamma.cc.o.d"
  "/root/repo/src/frapp/core/reconstructor.cc" "CMakeFiles/frapp.dir/src/frapp/core/reconstructor.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/core/reconstructor.cc.o.d"
  "/root/repo/src/frapp/core/subset_reconstruction.cc" "CMakeFiles/frapp.dir/src/frapp/core/subset_reconstruction.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/core/subset_reconstruction.cc.o.d"
  "/root/repo/src/frapp/data/boolean_vertical_index.cc" "CMakeFiles/frapp.dir/src/frapp/data/boolean_vertical_index.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/boolean_vertical_index.cc.o.d"
  "/root/repo/src/frapp/data/boolean_view.cc" "CMakeFiles/frapp.dir/src/frapp/data/boolean_view.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/boolean_view.cc.o.d"
  "/root/repo/src/frapp/data/census.cc" "CMakeFiles/frapp.dir/src/frapp/data/census.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/census.cc.o.d"
  "/root/repo/src/frapp/data/csv.cc" "CMakeFiles/frapp.dir/src/frapp/data/csv.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/csv.cc.o.d"
  "/root/repo/src/frapp/data/discretize.cc" "CMakeFiles/frapp.dir/src/frapp/data/discretize.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/discretize.cc.o.d"
  "/root/repo/src/frapp/data/domain_index.cc" "CMakeFiles/frapp.dir/src/frapp/data/domain_index.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/domain_index.cc.o.d"
  "/root/repo/src/frapp/data/health.cc" "CMakeFiles/frapp.dir/src/frapp/data/health.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/health.cc.o.d"
  "/root/repo/src/frapp/data/label_interner.cc" "CMakeFiles/frapp.dir/src/frapp/data/label_interner.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/label_interner.cc.o.d"
  "/root/repo/src/frapp/data/schema.cc" "CMakeFiles/frapp.dir/src/frapp/data/schema.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/schema.cc.o.d"
  "/root/repo/src/frapp/data/shard_io.cc" "CMakeFiles/frapp.dir/src/frapp/data/shard_io.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/shard_io.cc.o.d"
  "/root/repo/src/frapp/data/sharded_boolean_vertical_index.cc" "CMakeFiles/frapp.dir/src/frapp/data/sharded_boolean_vertical_index.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/sharded_boolean_vertical_index.cc.o.d"
  "/root/repo/src/frapp/data/sharded_table.cc" "CMakeFiles/frapp.dir/src/frapp/data/sharded_table.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/sharded_table.cc.o.d"
  "/root/repo/src/frapp/data/synthetic.cc" "CMakeFiles/frapp.dir/src/frapp/data/synthetic.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/synthetic.cc.o.d"
  "/root/repo/src/frapp/data/table.cc" "CMakeFiles/frapp.dir/src/frapp/data/table.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/data/table.cc.o.d"
  "/root/repo/src/frapp/eval/experiment.cc" "CMakeFiles/frapp.dir/src/frapp/eval/experiment.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/eval/experiment.cc.o.d"
  "/root/repo/src/frapp/eval/metrics.cc" "CMakeFiles/frapp.dir/src/frapp/eval/metrics.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/eval/metrics.cc.o.d"
  "/root/repo/src/frapp/eval/reporting.cc" "CMakeFiles/frapp.dir/src/frapp/eval/reporting.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/eval/reporting.cc.o.d"
  "/root/repo/src/frapp/linalg/condition.cc" "CMakeFiles/frapp.dir/src/frapp/linalg/condition.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/linalg/condition.cc.o.d"
  "/root/repo/src/frapp/linalg/jacobi_eigen.cc" "CMakeFiles/frapp.dir/src/frapp/linalg/jacobi_eigen.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/linalg/jacobi_eigen.cc.o.d"
  "/root/repo/src/frapp/linalg/kronecker.cc" "CMakeFiles/frapp.dir/src/frapp/linalg/kronecker.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/linalg/kronecker.cc.o.d"
  "/root/repo/src/frapp/linalg/lu.cc" "CMakeFiles/frapp.dir/src/frapp/linalg/lu.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/linalg/lu.cc.o.d"
  "/root/repo/src/frapp/linalg/matrix.cc" "CMakeFiles/frapp.dir/src/frapp/linalg/matrix.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/linalg/matrix.cc.o.d"
  "/root/repo/src/frapp/linalg/svd.cc" "CMakeFiles/frapp.dir/src/frapp/linalg/svd.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/linalg/svd.cc.o.d"
  "/root/repo/src/frapp/linalg/uniform_mixture.cc" "CMakeFiles/frapp.dir/src/frapp/linalg/uniform_mixture.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/linalg/uniform_mixture.cc.o.d"
  "/root/repo/src/frapp/linalg/vector.cc" "CMakeFiles/frapp.dir/src/frapp/linalg/vector.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/linalg/vector.cc.o.d"
  "/root/repo/src/frapp/mining/apriori.cc" "CMakeFiles/frapp.dir/src/frapp/mining/apriori.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/mining/apriori.cc.o.d"
  "/root/repo/src/frapp/mining/itemset.cc" "CMakeFiles/frapp.dir/src/frapp/mining/itemset.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/mining/itemset.cc.o.d"
  "/root/repo/src/frapp/mining/rules.cc" "CMakeFiles/frapp.dir/src/frapp/mining/rules.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/mining/rules.cc.o.d"
  "/root/repo/src/frapp/mining/sharded_vertical_index.cc" "CMakeFiles/frapp.dir/src/frapp/mining/sharded_vertical_index.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/mining/sharded_vertical_index.cc.o.d"
  "/root/repo/src/frapp/mining/support_counter.cc" "CMakeFiles/frapp.dir/src/frapp/mining/support_counter.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/mining/support_counter.cc.o.d"
  "/root/repo/src/frapp/mining/vertical_index.cc" "CMakeFiles/frapp.dir/src/frapp/mining/vertical_index.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/mining/vertical_index.cc.o.d"
  "/root/repo/src/frapp/pipeline/prefetching_table_source.cc" "CMakeFiles/frapp.dir/src/frapp/pipeline/prefetching_table_source.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/pipeline/prefetching_table_source.cc.o.d"
  "/root/repo/src/frapp/pipeline/privacy_pipeline.cc" "CMakeFiles/frapp.dir/src/frapp/pipeline/privacy_pipeline.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/pipeline/privacy_pipeline.cc.o.d"
  "/root/repo/src/frapp/pipeline/table_source.cc" "CMakeFiles/frapp.dir/src/frapp/pipeline/table_source.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/pipeline/table_source.cc.o.d"
  "/root/repo/src/frapp/random/alias_sampler.cc" "CMakeFiles/frapp.dir/src/frapp/random/alias_sampler.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/random/alias_sampler.cc.o.d"
  "/root/repo/src/frapp/random/distributions.cc" "CMakeFiles/frapp.dir/src/frapp/random/distributions.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/random/distributions.cc.o.d"
  "/root/repo/src/frapp/random/rng.cc" "CMakeFiles/frapp.dir/src/frapp/random/rng.cc.o" "gcc" "CMakeFiles/frapp.dir/src/frapp/random/rng.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
