# Empty compiler generated dependencies file for frapp.
# This may be replaced when dependencies are built.
