# Empty compiler generated dependencies file for fig1_census_errors.
# This may be replaced when dependencies are built.
