file(REMOVE_RECURSE
  "CMakeFiles/fig1_census_errors.dir/bench/fig1_census_errors.cc.o"
  "CMakeFiles/fig1_census_errors.dir/bench/fig1_census_errors.cc.o.d"
  "fig1_census_errors"
  "fig1_census_errors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_census_errors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
