// Distributed-counting overhead on CENSUS 50k: the coordinator/worker path
// (frapp/dist) vs the in-process pipeline it is bit-identical to.
//
//   BM_DistMineInProcess/<mech>/<workers>  full distributed mine over N
//                                          in-process workers (handshake +
//                                          worker-range ingest + every
//                                          candidate pass over the wire
//                                          protocol)
//   BM_DistMineRecovery/<mech>             the 4-worker in-process mine,
//                                          but one worker's transport is
//                                          scripted to die mid-mine; the
//                                          delta vs the 4-worker row is the
//                                          dead-worker recovery overhead
//                                          (range re-assignment + restarted
//                                          round)
//   BM_DistMineTcpLoopback/<mech>/<workers> the same over TCP loopback
//                                          sockets — real kernel round
//                                          trips per candidate pass
//   BM_PipelineReference/<mech>            the single-process
//                                          pipeline::PrivacyPipeline
//                                          baseline producing the identical
//                                          result
//
// Counters (per iteration):
//   bytes_sent / bytes_received  coordinator wire traffic, frame headers
//                                included. Per-pass traffic is exactly the
//                                candidate-count vectors: compare with
//                                rows x attributes ~ 300 KB that never
//                                move.
//   requests                     frames the coordinator sent
//   merge_ms                     tree-merge + Mobius time on the merged
//                                count vectors
//
// Single-core caveat (see docs/BENCHMARKS.md): in-process workers
// time-slice against the coordinator on one core, so distributed rows show
// protocol + serialization overhead rather than speedup; multi-machine
// deployments realize the fan-out as wall-clock.
//
// Emitted to BENCH_dist.json by tools/run_benchmarks.sh.
//
// Build & run:  ./build/dist_benchmark

#include <benchmark/benchmark.h>

#include "frapp_benchmark_main.h"

#include <memory>
#include <thread>
#include <vector>

#include "frapp/data/census.h"
#include "frapp/dist/coordinator.h"
#include "frapp/dist/fault.h"
#include "frapp/dist/worker.h"
#include "frapp/pipeline/privacy_pipeline.h"

namespace {

using namespace frapp;

constexpr size_t kRows = 50000;
constexpr uint64_t kDataSeed = 10;
constexpr uint64_t kPerturbSeed = 7;

const data::CategoricalTable& Table() {
  static const data::CategoricalTable* table =
      new data::CategoricalTable(*data::census::MakeDataset(kRows, kDataSeed));
  return *table;
}

dist::MechanismSpec SpecFor(int kind) {
  dist::MechanismSpec spec;
  spec.kind = static_cast<dist::MechanismSpec::Kind>(kind);
  return spec;
}

dist::WorkerOptions MakeWorkerOptions() {
  dist::WorkerOptions options(Table().schema());
  options.num_threads = 1;
  options.source_factory =
      []() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
    return std::unique_ptr<pipeline::TableSource>(
        std::make_unique<pipeline::InMemoryTableSource>(Table(),
                                                        /*num_shards=*/0));
  };
  return options;
}

mining::AprioriOptions MiningOptions() {
  mining::AprioriOptions options;
  options.min_support = 0.02;
  return options;
}

void ReportStats(benchmark::State& state, const dist::DistStats& stats,
                 size_t total_frequent) {
  state.counters["bytes_sent"] = static_cast<double>(stats.bytes_sent);
  state.counters["bytes_received"] = static_cast<double>(stats.bytes_received);
  state.counters["requests"] = static_cast<double>(stats.requests_sent);
  state.counters["merge_ms"] = stats.merge_nanos / 1e6;
  state.counters["frequent_itemsets"] = static_cast<double>(total_frequent);
}

void BM_DistMineInProcess(benchmark::State& state) {
  const dist::MechanismSpec spec = SpecFor(static_cast<int>(state.range(0)));
  const size_t num_workers = static_cast<size_t>(state.range(1));
  dist::DistStats stats;
  size_t total_frequent = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<dist::InProcessWorker>> workers;
    std::vector<std::unique_ptr<dist::Transport>> transports;
    for (size_t w = 0; w < num_workers; ++w) {
      workers.push_back(
          std::make_unique<dist::InProcessWorker>(MakeWorkerOptions()));
      transports.push_back(workers.back()->TakeCoordinatorEndpoint());
    }
    dist::CoordinatorOptions options;
    options.perturb_seed = kPerturbSeed;
    auto coordinator = *dist::Coordinator::Connect(
        std::move(transports), Table().schema(), spec, kRows, options);
    const mining::AprioriResult result = *coordinator->Mine(MiningOptions());
    benchmark::DoNotOptimize(result.TotalFrequent());
    total_frequent = result.TotalFrequent();
    stats = coordinator->stats();
    coordinator->Shutdown();
  }
  ReportStats(state, stats, total_frequent);
}
BENCHMARK(BM_DistMineInProcess)
    ->ArgNames({"mech", "workers"})
    // DET-GD (0) and MASK (2), the acceptance grid's mechanisms.
    ->Args({0, 1})
    ->Args({0, 2})
    ->Args({0, 4})
    ->Args({2, 1})
    ->Args({2, 2})
    ->Args({2, 4})
    ->Unit(benchmark::kMillisecond);

void BM_DistMineRecovery(benchmark::State& state) {
  // Same mine as BM_DistMineInProcess/<mech>/4, but one worker's transport
  // is scripted to die mid-mine (close after its first counting receive).
  // The coordinator re-assigns the dead worker's ranges to survivors and
  // restarts the round; the delta vs the 4-worker row is the recovery
  // overhead (re-ingest of the orphaned ranges + one restarted pass).
  const dist::MechanismSpec spec = SpecFor(static_cast<int>(state.range(0)));
  const size_t num_workers = 4;
  const dist::FaultSpec faults = *dist::ParseFaultSpec("1:close-recv=1");
  dist::DistStats stats;
  size_t total_frequent = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<dist::InProcessWorker>> workers;
    std::vector<std::unique_ptr<dist::Transport>> transports;
    for (size_t w = 0; w < num_workers; ++w) {
      workers.push_back(
          std::make_unique<dist::InProcessWorker>(MakeWorkerOptions()));
      transports.push_back(dist::MaybeInjectFaults(
          workers.back()->TakeCoordinatorEndpoint(), faults, w));
    }
    dist::CoordinatorOptions options;
    options.perturb_seed = kPerturbSeed;
    auto coordinator = *dist::Coordinator::Connect(
        std::move(transports), Table().schema(), spec, kRows, options);
    const mining::AprioriResult result = *coordinator->Mine(MiningOptions());
    benchmark::DoNotOptimize(result.TotalFrequent());
    total_frequent = result.TotalFrequent();
    stats = coordinator->stats();
    coordinator->Shutdown();
  }
  ReportStats(state, stats, total_frequent);
  state.counters["workers_failed"] = static_cast<double>(stats.workers_failed);
  state.counters["ranges_reassigned"] =
      static_cast<double>(stats.ranges_reassigned);
  state.counters["rounds_restarted"] =
      static_cast<double>(stats.rounds_restarted);
}
BENCHMARK(BM_DistMineRecovery)
    ->ArgNames({"mech"})
    ->Arg(0)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

void BM_DistMineTcpLoopback(benchmark::State& state) {
  const dist::MechanismSpec spec = SpecFor(static_cast<int>(state.range(0)));
  const size_t num_workers = static_cast<size_t>(state.range(1));
  dist::DistStats stats;
  size_t total_frequent = 0;
  for (auto _ : state) {
    // One listener+thread per worker per iteration: the measured time
    // includes connection setup, as a real deployment's first mine would.
    struct TcpWorker {
      std::unique_ptr<dist::TcpListener> listener;
      std::thread thread;
      Status result;
    };
    std::vector<std::unique_ptr<TcpWorker>> workers;
    std::vector<std::unique_ptr<dist::Transport>> transports;
    for (size_t w = 0; w < num_workers; ++w) {
      auto worker = std::make_unique<TcpWorker>();
      worker->listener = std::make_unique<dist::TcpListener>(
          *dist::TcpListener::Bind("127.0.0.1", 0));
      dist::TcpListener* listener = worker->listener.get();
      Status* result = &worker->result;
      worker->thread = std::thread([listener, result] {
        StatusOr<std::unique_ptr<dist::Transport>> accepted =
            listener->Accept();
        if (!accepted.ok()) {
          *result = accepted.status();
          return;
        }
        *result = dist::ServeWorker(**accepted, MakeWorkerOptions());
      });
      transports.push_back(
          *dist::TcpConnect("127.0.0.1", worker->listener->port()));
      workers.push_back(std::move(worker));
    }
    dist::CoordinatorOptions options;
    options.perturb_seed = kPerturbSeed;
    auto coordinator = *dist::Coordinator::Connect(
        std::move(transports), Table().schema(), spec, kRows, options);
    const mining::AprioriResult result = *coordinator->Mine(MiningOptions());
    benchmark::DoNotOptimize(result.TotalFrequent());
    total_frequent = result.TotalFrequent();
    stats = coordinator->stats();
    coordinator->Shutdown();
    for (auto& worker : workers) worker->thread.join();
  }
  ReportStats(state, stats, total_frequent);
}
BENCHMARK(BM_DistMineTcpLoopback)
    ->ArgNames({"mech", "workers"})
    ->Args({0, 2})
    ->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

void BM_PipelineReference(benchmark::State& state) {
  const dist::MechanismSpec spec = SpecFor(static_cast<int>(state.range(0)));
  size_t total_frequent = 0;
  for (auto _ : state) {
    auto mechanism = *dist::MakeMechanism(spec, Table().schema());
    pipeline::PipelineOptions options;
    options.num_shards = 3;
    options.perturb_seed = kPerturbSeed;
    options.mining = MiningOptions();
    const pipeline::PipelineResult result =
        *pipeline::PrivacyPipeline(options).Run(*mechanism, Table());
    benchmark::DoNotOptimize(result.mined.TotalFrequent());
    total_frequent = result.mined.TotalFrequent();
  }
  state.counters["frequent_itemsets"] = static_cast<double>(total_frequent);
}
BENCHMARK(BM_PipelineReference)
    ->ArgNames({"mech"})
    ->Arg(0)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

FRAPP_BENCHMARK_MAIN();
