// Microbenchmark of the reconstruction paths: the gamma-diagonal closed form
// (Sherman-Morrison, O(n)) versus the general dense LU solve (O(n^3)), and
// the per-itemset O(1) Eq.-28 reconstruction used inside Apriori passes.

#include <benchmark/benchmark.h>

#include "frapp_benchmark_main.h"

#include "frapp/core/reconstructor.h"
#include "frapp/core/subset_reconstruction.h"
#include "frapp/linalg/lu.h"
#include "frapp/random/rng.h"

namespace {

using namespace frapp;

linalg::Vector RandomHistogram(size_t n, uint64_t seed) {
  random::Pcg64 rng(seed);
  linalg::Vector y(n);
  for (size_t i = 0; i < n; ++i) y[i] = rng.NextDouble(0.0, 1000.0);
  return y;
}

void BM_GammaClosedFormReconstruction(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto matrix = *core::GammaDiagonalMatrix::Create(19.0, n);
  const linalg::Vector y = RandomHistogram(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ReconstructDistributionGamma(matrix, y));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_GammaClosedFormReconstruction)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Complexity(benchmark::oN);

void BM_DenseLuReconstruction(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  auto matrix = *core::GammaDiagonalMatrix::Create(19.0, n);
  const linalg::Matrix dense = matrix.ToDense();
  const linalg::Vector y = RandomHistogram(n, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ReconstructDistribution(dense, y));
  }
  state.SetComplexityN(static_cast<benchmark::IterationCount>(n));
}
BENCHMARK(BM_DenseLuReconstruction)
    ->RangeMultiplier(4)
    ->Range(64, 1024)
    ->Complexity(benchmark::oNCubed);

void BM_PerItemsetReconstruction(benchmark::State& state) {
  // The O(1) path used once per Apriori candidate.
  auto reconstructor = *core::GammaSubsetReconstructor::Create(19.0, 2000);
  double support = 0.051;
  for (auto _ : state) {
    benchmark::DoNotOptimize(reconstructor.ReconstructSupport(support, 100));
  }
}
BENCHMARK(BM_PerItemsetReconstruction);

void BM_LuFactorization(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  random::Pcg64 rng(3);
  linalg::Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng.NextDouble(-1.0, 1.0);
    a(i, i) += static_cast<double>(n);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::LuDecomposition::Compute(a));
  }
}
BENCHMARK(BM_LuFactorization)->RangeMultiplier(4)->Range(16, 256);

}  // namespace

FRAPP_BENCHMARK_MAIN();
