// Shared benchmark entry point that records authoritative frapp context.
//
// The stock BENCHMARK_MAIN() reports `library_build_type` from however the
// google-benchmark LIBRARY was compiled — Debian's prebuilt .so ships
// without NDEBUG, so every run says "debug" no matter how frapp itself was
// built. FRAPP_BENCHMARK_MAIN() adds context keys that describe the code
// actually being measured (see docs/BENCHMARKS.md):
//
//   frapp_build_type      CMake build type of this binary (e.g. "Release")
//   frapp_assertions      "off" when NDEBUG compiled this translation unit
//   frapp_kernel_level    once-resolved intersect+popcount dispatch level
//   frapp_kernel_best     best level the host supports (differs when forced)
//   frapp_kernel_forced   FRAPP_FORCE_KERNEL value, only when set
//   frapp_l1d_kib/l2_kib  detected cache geometry (the tiling inputs)
//   frapp_physical_cores  physical-core count (pinning / parser default)

#ifndef FRAPP_BENCH_FRAPP_BENCHMARK_MAIN_H_
#define FRAPP_BENCH_FRAPP_BENCHMARK_MAIN_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>

#include "frapp/common/cpuinfo.h"
#include "frapp/mining/kernels.h"

#ifndef FRAPP_CMAKE_BUILD_TYPE
#define FRAPP_CMAKE_BUILD_TYPE "unknown"
#endif

namespace frapp {
namespace bench {

inline void AddBuildAndDispatchContext() {
  ::benchmark::AddCustomContext("frapp_build_type", FRAPP_CMAKE_BUILD_TYPE);
#ifdef NDEBUG
  ::benchmark::AddCustomContext("frapp_assertions", "off");
#else
  ::benchmark::AddCustomContext("frapp_assertions", "on");
#endif
  ::benchmark::AddCustomContext(
      "frapp_kernel_level",
      mining::KernelLevelName(mining::ActiveKernels().level));
  ::benchmark::AddCustomContext(
      "frapp_kernel_best",
      mining::KernelLevelName(mining::BestSupportedLevel()));
  const char* forced = std::getenv("FRAPP_FORCE_KERNEL");
  if (forced != nullptr && forced[0] != '\0') {
    ::benchmark::AddCustomContext("frapp_kernel_forced", forced);
  }
  const common::CpuInfo& info = common::GetCpuInfo();
  ::benchmark::AddCustomContext("frapp_l1d_kib",
                                std::to_string(info.cache.l1d_bytes / 1024));
  ::benchmark::AddCustomContext("frapp_l2_kib",
                                std::to_string(info.cache.l2_bytes / 1024));
  ::benchmark::AddCustomContext("frapp_physical_cores",
                                std::to_string(info.physical_cores));
}

}  // namespace bench
}  // namespace frapp

#define FRAPP_BENCHMARK_MAIN()                                          \
  int main(int argc, char** argv) {                                     \
    char arg0_default[] = "benchmark";                                  \
    char* args_default = arg0_default;                                  \
    if (!argv) {                                                        \
      argc = 1;                                                         \
      argv = &args_default;                                             \
    }                                                                   \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::frapp::bench::AddBuildAndDispatchContext();                       \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }                                                                     \
  int main(int, char**)

#endif  // FRAPP_BENCH_FRAPP_BENCHMARK_MAIN_H_
