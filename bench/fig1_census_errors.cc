// Reproduces paper Figure 1: support error (a), false negatives (b) and
// false positives (c) versus frequent-itemset length on CENSUS, for DET-GD,
// RAN-GD (alpha = gamma*x/2), MASK and C&P.

#include "fig_errors_common.h"

int main() {
  using namespace frapp;
  const data::CategoricalTable census =
      bench::Unwrap(data::census::MakeDataset(), "census data");
  bench::RunErrorFigure(
      "Figure 1: CENSUS mining errors (DET-GD / RAN-GD / MASK / C&P)", census,
      /*perturb_seed=*/20050701);
  return 0;
}
