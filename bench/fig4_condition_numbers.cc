// Reproduces paper Figure 4: condition number of the reconstruction
// (transition probability) matrices versus frequent-itemset length, for
// DET-GD, RAN-GD, MASK and C&P on (a) CENSUS and (b) HEALTH. This is the
// quantity that explains the accuracy ordering of Figures 1-2.

#include <iostream>

#include "bench_util.h"

namespace {

using namespace frapp;

void ConditionFigure(const char* label, const data::CategoricalSchema& schema) {
  std::cout << label << " (log-scale in the paper)\n";
  auto mechanisms = bench::PaperMechanisms(schema);
  std::vector<std::string> headers = {"length"};
  for (const auto& m : mechanisms) headers.push_back(m->name());
  eval::TextTable out(std::move(headers));
  for (size_t k = 1; k <= schema.num_attributes(); ++k) {
    std::vector<std::string> row = {std::to_string(k)};
    for (const auto& m : mechanisms) {
      StatusOr<double> cond = m->ConditionNumberForLength(k);
      row.push_back(cond.ok() ? eval::Cell(*cond, 4) : std::string("-"));
    }
    out.AddRow(std::move(row));
  }
  out.Print(std::cout);

  const double gamma_cond =
      (bench::kGamma + static_cast<double>(schema.DomainSize()) - 1.0) /
      (bench::kGamma - 1.0);
  std::cout << "\nDET-GD/RAN-GD closed form 1 + |S_U|/(gamma-1) = "
            << eval::Cell(gamma_cond, 5) << ", constant in the length.\n\n";
}

}  // namespace

int main() {
  using namespace frapp;
  std::cout << "=== Figure 4: condition numbers of reconstruction matrices ===\n";
  std::cout << "gamma = " << bench::kGamma << "; MASK p calibrated per dataset; "
            << "C&P K = " << bench::kCutPasteK << ", rho = " << bench::kCutPasteRho
            << "\n\n";

  ConditionFigure("(a) CENSUS", data::census::Schema());
  ConditionFigure("(b) HEALTH", data::health::Schema());

  std::cout << "Expected shape (paper): DET-GD/RAN-GD constant (~112 CENSUS,\n"
               "~418 HEALTH); MASK and C&P grow exponentially with length,\n"
               "reaching ~1e5 and ~1e7, which destroys their reconstruction\n"
               "accuracy for long patterns.\n";
  return 0;
}
