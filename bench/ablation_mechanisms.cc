// Ablations beyond the paper's headline comparison:
//  1. dependent-column (DET-GD) versus independent-column (IND-GD) gamma
//     perturbation at the same record-level privacy (paper Section 2
//     distinguishes the two classes; FRAPP chooses dependent);
//  2. the randomization distribution of RAN-GD (uniform vs two-point vs
//     truncated Gaussian), all zero-mean with the same support.

#include <cmath>
#include <iostream>
#include <limits>

#include "bench_util.h"

namespace {

using namespace frapp;

void PrintRun(eval::TextTable& out, const eval::MechanismRun& run) {
  const eval::LengthAccuracy total = eval::OverallAccuracy(run.accuracy);
  out.AddRow({run.mechanism_name, eval::Cell(total.support_error, 4),
              eval::Cell(total.sigma_minus, 4), eval::Cell(total.sigma_plus, 4),
              std::to_string(total.correct) + "/" +
                  std::to_string(total.true_frequent)});
}

}  // namespace

int main() {
  using namespace frapp;
  std::cout << "=== Ablation: mechanism design choices (CENSUS, gamma = 19) ===\n\n";

  const data::CategoricalTable census =
      bench::Unwrap(data::census::MakeDataset(), "census data");
  const mining::AprioriResult truth = bench::MineTruth(census);
  eval::ExperimentConfig config;
  config.min_support = bench::kMinSupport;
  config.perturb_seed = 20050705;

  std::cout << "(1) Dependent-column vs independent-column perturbation\n";
  {
    eval::TextTable out(
        {"mechanism", "rho (%)", "sigma- (%)", "sigma+ (%)", "correct"});
    auto det = bench::Unwrap(
        core::DetGdMechanism::Create(census.schema(), bench::kGamma), "DET-GD");
    PrintRun(out, bench::Unwrap(eval::RunMechanism(*det, census, truth, config),
                                "DET-GD run"));
    auto ind = bench::Unwrap(
        core::IndependentColumnMechanism::Create(census.schema(), bench::kGamma),
        "IND-GD");
    PrintRun(out, bench::Unwrap(eval::RunMechanism(*ind, census, truth, config),
                                "IND-GD run"));
    out.Print(std::cout);

    std::cout << "\nCondition numbers by itemset length:\n";
    eval::TextTable cond({"length", "DET-GD", "IND-GD (geo-mean over subsets)"});
    for (size_t k = 1; k <= census.schema().num_attributes(); ++k) {
      cond.AddRow({std::to_string(k),
                   eval::Cell(*det->ConditionNumberForLength(k), 4),
                   eval::Cell(*ind->ConditionNumberForLength(k), 4)});
    }
    cond.Print(std::cout);
    std::cout << "\nExpected: IND-GD's condition number grows with length while\n"
                 "DET-GD stays constant - quantifying why FRAPP perturbs the\n"
                 "record jointly rather than column-by-column.\n\n";
  }

  std::cout << "(2) RAN-GD randomization distribution (alpha = gamma*x/2)\n";
  {
    const double x =
        1.0 / (bench::kGamma + static_cast<double>(census.schema().DomainSize()) - 1.0);
    const double alpha = bench::kGamma * x / 2.0;
    eval::TextTable out(
        {"mechanism", "rho (%)", "sigma- (%)", "sigma+ (%)", "correct"});
    for (random::RandomizationKind kind :
         {random::RandomizationKind::kUniform, random::RandomizationKind::kTwoPoint,
          random::RandomizationKind::kTruncatedGaussian}) {
      auto ran = bench::Unwrap(
          core::RanGdMechanism::Create(census.schema(), bench::kGamma, alpha, kind),
          "RAN-GD");
      eval::MechanismRun run = bench::Unwrap(
          eval::RunMechanism(*ran, census, truth, config), "RAN-GD run");
      run.mechanism_name += std::string(" (") + RandomizationKindName(kind) + ")";
      PrintRun(out, run);
    }
    out.Print(std::cout);
    std::cout << "\nExpected: all three randomization families deliver similar\n"
                 "accuracy (reconstruction only uses the mean matrix); the\n"
                 "choice is a privacy-policy knob, not an accuracy knob.\n";
  }
  return 0;
}
