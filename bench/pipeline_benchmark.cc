// Shards x threads sweep of the full shard-streaming privacy pipeline
// (perturb -> index -> count -> reconstruct -> mine, DET-GD) on the CENSUS
// 50k stand-in. The (1 shard, 1 thread) row is the monolithic baseline; all
// rows produce bit-identical mined results, so every speedup is pure
// parallelism. Counters report the per-shard memory bound:
//   peak_perturbed_bytes — high-water mark of perturbed rows alive at once
//   max_shard_rows       — rows of the largest shard
// Emitted to BENCH_pipeline.json by tools/run_benchmarks.sh.

#include <benchmark/benchmark.h>

#include "frapp_benchmark_main.h"

#include "frapp/core/mechanism.h"
#include "frapp/data/census.h"
#include "frapp/pipeline/privacy_pipeline.h"

namespace {

using namespace frapp;

void BM_DetGdShardedPipeline(benchmark::State& state) {
  const size_t num_shards = static_cast<size_t>(state.range(0));
  const size_t num_threads = static_cast<size_t>(state.range(1));
  const data::CategoricalTable table = *data::census::MakeDataset(50000, 10);

  pipeline::PipelineOptions options;
  options.num_shards = num_shards;
  options.num_threads = num_threads;
  options.perturb_seed = 11;
  options.mining.min_support = 0.02;
  const pipeline::PrivacyPipeline pipeline(options);

  pipeline::PipelineStats stats;
  for (auto _ : state) {
    auto mechanism = *core::DetGdMechanism::Create(table.schema(), 19.0);
    StatusOr<pipeline::PipelineResult> result = pipeline.Run(*mechanism, table);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    stats = result->stats;
    benchmark::DoNotOptimize(result->mined);
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
  state.counters["shards"] = static_cast<double>(stats.num_shards);
  state.counters["max_shard_rows"] = static_cast<double>(stats.max_shard_rows);
  state.counters["peak_perturbed_bytes"] =
      static_cast<double>(stats.peak_inflight_perturbed_bytes);
}
BENCHMARK(BM_DetGdShardedPipeline)
    ->ArgNames({"shards", "threads"})
    ->Args({1, 1})  // monolithic baseline
    ->Args({4, 1})
    ->Args({7, 1})
    ->Args({4, 2})
    ->Args({4, 4})
    ->Args({7, 4})
    ->Args({7, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The counting pass in isolation: one Apriori run over a pre-built exact
// sharded index, sweeping the same grid. Isolates the shard-parallel
// CountSupports gain from the perturbation/index-build gain.
void BM_ExactAprioriSharded(benchmark::State& state) {
  const size_t num_shards = static_cast<size_t>(state.range(0));
  const size_t num_threads = static_cast<size_t>(state.range(1));
  const data::CategoricalTable table = *data::census::MakeDataset(50000, 9);
  mining::AprioriOptions options;
  options.min_support = 0.02;
  options.count_shards = num_shards;
  options.num_threads = num_threads;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::MineExact(table, options));
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_ExactAprioriSharded)
    ->ArgNames({"shards", "threads"})
    ->Args({1, 1})
    ->Args({7, 1})
    ->Args({7, 4})
    ->Args({16, 4})
    ->Args({16, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

FRAPP_BENCHMARK_MAIN();
