// Reproduces paper Table 2: the HEALTH dataset's attributes and categories,
// plus the calibrated marginals of the synthetic stand-in generator.

#include <iostream>

#include "bench_util.h"
#include "frapp/data/health.h"
#include "frapp/data/synthetic.h"

int main() {
  using namespace frapp;

  std::cout << "=== Table 2: HEALTH dataset ===\n\n";
  const data::CategoricalSchema schema = data::health::Schema();
  eval::TextTable table({"Attribute", "Categories"});
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    const data::Attribute& attr = schema.attribute(j);
    std::string cats;
    for (size_t c = 0; c < attr.categories.size(); ++c) {
      if (c > 0) cats += "; ";
      cats += attr.categories[c];
    }
    table.AddRow({attr.name, cats});
  }
  table.Print(std::cout);

  std::cout << "\nJoint domain size |S_U| = " << schema.DomainSize()
            << "  (paper: 5*5*5*3*2*2*5 = 7500)\n";
  std::cout << "Boolean attributes M_b = " << schema.TotalCategories()
            << "  (MASK one-hot mapping)\n";

  std::cout << "\n--- Calibrated generator marginals (NHIS stand-in) ---\n";
  data::ChainGenerator generator =
      bench::Unwrap(data::health::Generator(), "health generator");
  eval::TextTable marginals({"Attribute", "Category", "P(category)"});
  for (size_t j = 0; j < schema.num_attributes(); ++j) {
    const linalg::Vector m = generator.ExactMarginal(j);
    for (size_t c = 0; c < m.size(); ++c) {
      marginals.AddRow({schema.attribute(j).name, schema.attribute(j).categories[c],
                        eval::Cell(m[c], 3)});
    }
  }
  marginals.Print(std::cout);
  return 0;
}
