// Reproduces paper Table 3: the number of frequent itemsets per length in
// CENSUS and HEALTH at supmin = 2%, mined exactly with Apriori.

#include <iostream>

#include "bench_util.h"

int main() {
  using namespace frapp;

  std::cout << "=== Table 3: Frequent itemsets for supmin = 0.02 ===\n\n";

  const data::CategoricalTable census =
      bench::Unwrap(data::census::MakeDataset(), "census data");
  const data::CategoricalTable health =
      bench::Unwrap(data::health::MakeDataset(), "health data");

  const mining::AprioriResult census_result = bench::MineTruth(census);
  const mining::AprioriResult health_result = bench::MineTruth(health);

  const size_t max_len =
      std::max(census_result.MaxLength(), health_result.MaxLength());

  std::vector<std::string> headers = {"Dataset"};
  for (size_t k = 1; k <= max_len; ++k) headers.push_back(std::to_string(k));
  headers.push_back("total");
  eval::TextTable table(std::move(headers));

  const auto add_row = [&](const std::string& name,
                           const mining::AprioriResult& result,
                           const std::vector<size_t>& paper_counts) {
    std::vector<std::string> row = {name};
    for (size_t k = 1; k <= max_len; ++k) {
      row.push_back(result.OfLength(k).empty() && k > result.MaxLength()
                        ? "-"
                        : std::to_string(result.OfLength(k).size()));
    }
    row.push_back(std::to_string(result.TotalFrequent()));
    table.AddRow(std::move(row));

    std::vector<std::string> paper_row = {name + " (paper)"};
    size_t total = 0;
    for (size_t k = 1; k <= max_len; ++k) {
      if (k <= paper_counts.size()) {
        paper_row.push_back(std::to_string(paper_counts[k - 1]));
        total += paper_counts[k - 1];
      } else {
        paper_row.push_back("-");
      }
    }
    paper_row.push_back(std::to_string(total));
    table.AddRow(std::move(paper_row));
  };

  add_row("CENSUS", census_result, {19, 102, 203, 165, 64, 10});
  add_row("HEALTH", health_result, {23, 123, 292, 361, 250, 86, 12});
  table.Print(std::cout);

  std::cout << "\nN(CENSUS) = " << census.num_rows()
            << ", N(HEALTH) = " << health.num_rows() << "\n";
  std::cout << "(Counts are from the calibrated synthetic stand-ins; the paper\n"
               " rows are reproduced for comparison. The profile to match is the\n"
               " singleton count and the presence of long frequent itemsets.)\n";
  return 0;
}
