// Ablation backing the paper's Section 3 optimality theorem: among symmetric
// column-stochastic matrices with amplification <= gamma, the gamma-diagonal
// matrix minimizes the condition number, c >= (gamma + n - 1)/(gamma - 1).
// We search randomized feasible matrices and report the best condition
// number found versus the bound.

#include <cmath>
#include <iostream>
#include <limits>

#include "bench_util.h"
#include "frapp/core/gamma_diagonal.h"
#include "frapp/core/privacy.h"
#include "frapp/linalg/condition.h"
#include "frapp/random/rng.h"

namespace {

using namespace frapp;

// Draws a random symmetric doubly stochastic matrix (a convex mixture of
// symmetrized permutation matrices, Birkhoff-style), then blends it toward
// the uniform matrix J/n just enough to satisfy the gamma amplification
// constraint. Every draw is feasible, so the search actually explores the
// constraint set.
linalg::Matrix RandomFeasibleCandidate(size_t n, double gamma, random::Pcg64& rng) {
  linalg::Matrix s(n, n);
  const int num_permutations = 2 * static_cast<int>(n);
  std::vector<size_t> perm(n);
  for (int w = 0; w < num_permutations; ++w) {
    for (size_t i = 0; i < n; ++i) perm[i] = i;
    for (size_t i = n; i-- > 1;) {
      std::swap(perm[i], perm[rng.NextBounded(i + 1)]);
    }
    const double weight = rng.NextDouble(0.1, 1.0);
    for (size_t i = 0; i < n; ++i) {
      s(i, perm[i]) += weight / 2.0;
      s(perm[i], i) += weight / 2.0;
    }
  }
  // Normalize the mixture to stochasticity (all column sums are equal).
  double column_sum = 0.0;
  for (size_t i = 0; i < n; ++i) column_sum += s(i, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) s(i, j) /= column_sum;
  }

  // Positive definite base: x I + (1-x) S with x > 1/2 dominates S's most
  // negative eigenvalue (>= -1), keeping the candidate in the theorem's
  // symmetric positive definite class.
  const double x = rng.NextDouble(0.55, 0.9);
  linalg::Matrix base = linalg::Matrix::Identity(n) * x + s * (1.0 - x);

  // Largest blend of the base (vs uniform) that keeps amplification <= gamma.
  const linalg::Matrix uniform(n, n, 1.0 / static_cast<double>(n));
  double lo = 0.0, hi = 1.0;
  for (int iter = 0; iter < 30; ++iter) {
    const double mid = 0.5 * (lo + hi);
    linalg::Matrix blend = uniform * (1.0 - mid) + base * mid;
    (core::MatrixAmplification(blend) <= gamma ? lo : hi) = mid;
  }
  return uniform * (1.0 - lo) + base * lo;
}

}  // namespace

int main() {
  using namespace frapp;
  std::cout << "=== Ablation: optimality of the gamma-diagonal matrix ===\n";
  std::cout << "(random search over symmetric stochastic matrices with\n"
               " amplification <= gamma; paper Section 3 proves the bound)\n\n";

  eval::TextTable out({"gamma", "n", "bound (g+n-1)/(g-1)", "best random cond",
                       "feasible draws", "violations"});
  random::Pcg64 rng(20050405);
  for (double gamma : {3.0, 10.0, 19.0}) {
    for (size_t n : {4ull, 8ull, 16ull}) {
      const double bound = core::MinimumConditionNumberBound(gamma, n);
      double best = std::numeric_limits<double>::infinity();
      int feasible = 0;
      int violations = 0;
      for (int trial = 0; trial < 400; ++trial) {
        linalg::Matrix m = RandomFeasibleCandidate(n, gamma, rng);
        if (!m.IsColumnStochastic(1e-6)) continue;
        if (core::MatrixAmplification(m) > gamma) continue;
        StatusOr<double> cond = linalg::SymmetricConditionNumber(m);
        if (!cond.ok()) continue;
        ++feasible;
        best = std::min(best, *cond);
        if (*cond < bound * (1.0 - 1e-9)) ++violations;
      }
      out.AddRow({eval::Cell(gamma, 3), std::to_string(n), eval::Cell(bound, 5),
                  eval::Cell(best, 5), std::to_string(feasible),
                  std::to_string(violations)});
    }
  }
  out.Print(std::cout);
  std::cout << "\nExpected: zero violations; the best random condition number\n"
               "stays at or above the bound, which the gamma-diagonal matrix\n"
               "attains exactly.\n";
  return 0;
}
