// Microbenchmark backing the paper's Section 5 complexity claim: the
// dependent-column gamma-diagonal perturber costs O(sum_j |S_j|) per record,
// while the straightforward CDF-scan algorithm costs O(prod_j |S_j|) — so
// adding attributes grows the naive cost geometrically but the efficient
// cost only linearly. Also measures MASK / C&P perturbation throughput.

#include <benchmark/benchmark.h>

#include "frapp_benchmark_main.h"

#include "frapp/core/cut_paste_scheme.h"
#include "frapp/core/gamma_diagonal.h"
#include "frapp/core/mask_scheme.h"
#include "frapp/core/naive_perturber.h"
#include "frapp/core/randomized_gamma.h"
#include "frapp/data/boolean_view.h"
#include "frapp/data/census.h"

namespace {

using namespace frapp;

// Schema with `m` attributes of 4 categories each: |S_U| = 4^m.
data::CategoricalSchema PowerSchema(size_t m) {
  std::vector<data::Attribute> attrs;
  for (size_t j = 0; j < m; ++j) {
    attrs.push_back({"a" + std::to_string(j), {"0", "1", "2", "3"}});
  }
  return *data::CategoricalSchema::Create(std::move(attrs));
}

data::CategoricalTable RandomTable(const data::CategoricalSchema& schema, size_t n) {
  data::CategoricalTable table = *data::CategoricalTable::Create(schema);
  random::Pcg64 rng(1);
  std::vector<uint8_t> row(schema.num_attributes());
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < row.size(); ++j) {
      row[j] = static_cast<uint8_t>(rng.NextBounded(schema.Cardinality(j)));
    }
    (void)table.AppendRow(row);
  }
  return table;
}

void BM_EfficientGammaPerturb(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const data::CategoricalSchema schema = PowerSchema(m);
  const data::CategoricalTable table = RandomTable(schema, 1000);
  auto perturber = *core::GammaDiagonalPerturber::Create(schema, 19.0);
  random::Pcg64 rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perturber.Perturb(table, rng));
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
  state.counters["domain"] = static_cast<double>(schema.DomainSize());
}
BENCHMARK(BM_EfficientGammaPerturb)->DenseRange(2, 8, 2);

void BM_NaiveCdfPerturb(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const data::CategoricalSchema schema = PowerSchema(m);
  const data::CategoricalTable table = RandomTable(schema, 1000);
  auto matrix = *core::GammaDiagonalMatrix::Create(19.0, schema.DomainSize());
  auto perturber = *core::NaivePerturber::Create(schema, matrix);
  random::Pcg64 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perturber.Perturb(table, rng));
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
  state.counters["domain"] = static_cast<double>(schema.DomainSize());
}
// 4^8 = 65536: already ~3 orders slower per record than the efficient path.
BENCHMARK(BM_NaiveCdfPerturb)->DenseRange(2, 8, 2);

// The pre-alias sequential per-column Bernoulli loop, kept as the in-run
// baseline for the divergence-column kernel.
void BM_SequentialGammaPerturb(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const data::CategoricalSchema schema = PowerSchema(m);
  const data::CategoricalTable table = RandomTable(schema, 1000);
  auto matrix = *core::GammaDiagonalMatrix::Create(19.0, schema.DomainSize());
  std::vector<size_t> cardinalities(m, 4);
  random::Pcg64 rng(2);
  std::vector<uint8_t> record(m);
  std::vector<uint8_t> perturbed(m);
  for (auto _ : state) {
    data::CategoricalTable out = *data::CategoricalTable::Create(schema);
    out.Reserve(table.num_rows());
    for (size_t i = 0; i < table.num_rows(); ++i) {
      for (size_t j = 0; j < m; ++j) record[j] = table.Value(i, j);
      core::PerturbRecordDiagonalForm(record, cardinalities, schema.DomainSize(),
                                      matrix.DiagonalValue(),
                                      matrix.OffDiagonalValue(), rng, &perturbed);
      (void)out.AppendRow(perturbed);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_SequentialGammaPerturb)->DenseRange(2, 8, 2);

// Deterministic seeded path; range(1) = worker threads.
void BM_SeededGammaPerturb(benchmark::State& state) {
  const size_t m = static_cast<size_t>(state.range(0));
  const data::CategoricalSchema schema = PowerSchema(m);
  const data::CategoricalTable table = RandomTable(schema, 50000);
  auto perturber = *core::GammaDiagonalPerturber::Create(schema, 19.0);
  const size_t threads = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(perturber.PerturbSeeded(table, 99, threads));
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_SeededGammaPerturb)->Args({6, 1})->Args({6, 2})->Args({6, 4});

void BM_RandomizedGammaPerturb(benchmark::State& state) {
  const data::CategoricalSchema schema = data::census::Schema();
  const data::CategoricalTable table = RandomTable(schema, 1000);
  const double x = 1.0 / (19.0 + schema.DomainSize() - 1.0);
  auto perturber =
      *core::RandomizedGammaPerturber::Create(schema, 19.0, 19.0 * x / 2.0);
  random::Pcg64 rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perturber.Perturb(table, rng));
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_RandomizedGammaPerturb);

void BM_MaskPerturb(benchmark::State& state) {
  const data::CategoricalSchema schema = data::census::Schema();
  const data::CategoricalTable table = RandomTable(schema, 1000);
  const data::BooleanTable onehot = *data::BooleanTable::FromCategorical(table);
  auto scheme = *core::MaskScheme::CalibrateForGamma(19.0, 6);
  random::Pcg64 rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.Perturb(onehot, rng));
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_MaskPerturb);

void BM_CutPastePerturb(benchmark::State& state) {
  const data::CategoricalSchema schema = data::census::Schema();
  const data::CategoricalTable table = RandomTable(schema, 1000);
  const data::BooleanTable onehot = *data::BooleanTable::FromCategorical(table);
  auto scheme = *core::CutPasteScheme::Create(3, 0.494, 6, 23);
  random::Pcg64 rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.Perturb(onehot, rng));
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_CutPastePerturb);

}  // namespace

FRAPP_BENCHMARK_MAIN();
