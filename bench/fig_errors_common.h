// Shared driver for Figures 1 and 2: run the four Section-7 mechanisms on a
// dataset and print the support-error and identity-error series per
// frequent-itemset length.

#ifndef FRAPP_BENCH_FIG_ERRORS_COMMON_H_
#define FRAPP_BENCH_FIG_ERRORS_COMMON_H_

#include <cmath>
#include <iostream>
#include <limits>

#include "bench_util.h"

namespace frapp {
namespace bench {

inline void RunErrorFigure(const char* figure_name,
                           const data::CategoricalTable& table,
                           uint64_t perturb_seed) {
  std::cout << "=== " << figure_name << " ===\n";
  std::cout << "gamma = " << kGamma << " ((rho1, rho2) = (5%, 50%)), supmin = "
            << kMinSupport * 100 << "%, N = " << table.num_rows() << "\n\n";

  const mining::AprioriResult truth = MineTruth(table);
  std::cout << "True frequent itemsets per length:";
  for (size_t k = 1; k <= truth.MaxLength(); ++k) {
    std::cout << "  L" << k << "=" << truth.OfLength(k).size();
  }
  std::cout << "\n\n";

  eval::ExperimentConfig config;
  config.min_support = kMinSupport;
  config.perturb_seed = perturb_seed;

  std::vector<eval::MechanismRun> runs;
  for (auto& mechanism : PaperMechanisms(table.schema())) {
    runs.push_back(Unwrap(eval::RunMechanism(*mechanism, table, truth, config),
                          mechanism->name().c_str()));
  }

  const auto print_metric =
      [&](const char* title, auto metric) {
        std::cout << title << "\n";
        std::vector<std::string> headers = {"length"};
        for (const auto& run : runs) headers.push_back(run.mechanism_name);
        eval::TextTable out(std::move(headers));
        for (size_t k = 1; k <= truth.MaxLength(); ++k) {
          std::vector<std::string> row = {std::to_string(k)};
          for (const auto& run : runs) {
            double value = std::numeric_limits<double>::quiet_NaN();
            for (const auto& acc : run.accuracy) {
              if (acc.length == k) value = metric(acc);
            }
            row.push_back(eval::Cell(value, 4));
          }
          out.AddRow(std::move(row));
        }
        out.Print(std::cout);
        std::cout << "\n";
      };

  print_metric("(a) Support error rho (%), log-scale in the paper:",
               [](const eval::LengthAccuracy& a) { return a.support_error; });
  print_metric("(b) False negatives sigma- (%):",
               [](const eval::LengthAccuracy& a) { return a.sigma_minus; });
  print_metric("(c) False positives sigma+ (%):",
               [](const eval::LengthAccuracy& a) { return a.sigma_plus; });

  std::cout << "Expected shape (paper): DET-GD and RAN-GD stay accurate at all\n"
               "lengths; MASK and C&P degrade drastically beyond length 3-4 and\n"
               "stop finding long itemsets entirely (sigma- -> 100, rho -> '-').\n";
}

}  // namespace bench
}  // namespace frapp

#endif  // FRAPP_BENCH_FIG_ERRORS_COMMON_H_
