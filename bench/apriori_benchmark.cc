// Microbenchmark of the mining substrate: exact Apriori and the
// privacy-preserving DET-GD pipeline (perturb + mine with reconstruction)
// on CENSUS-scale data.

#include <benchmark/benchmark.h>

#include "frapp/core/mechanism.h"
#include "frapp/data/census.h"
#include "frapp/mining/apriori.h"
#include "frapp/mining/support_counter.h"

namespace {

using namespace frapp;

void BM_ExactApriori(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const data::CategoricalTable table = *data::census::MakeDataset(n, 9);
  mining::AprioriOptions options;
  options.min_support = 0.02;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::MineExact(table, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExactApriori)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_DetGdPipeline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const data::CategoricalTable table = *data::census::MakeDataset(n, 10);
  mining::AprioriOptions options;
  options.min_support = 0.02;
  for (auto _ : state) {
    auto mechanism = *core::DetGdMechanism::Create(table.schema(), 19.0);
    random::Pcg64 rng(11);
    (void)mechanism->Prepare(table, rng);
    benchmark::DoNotOptimize(mining::MineFrequentItemsets(
        table.schema(), mechanism->estimator(), options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DetGdPipeline)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_SupportCount(benchmark::State& state) {
  const data::CategoricalTable table = *data::census::MakeDataset(50000, 12);
  const mining::Itemset itemset = *mining::Itemset::Create(
      {{0, 0}, {3, 0}, {4, 1}, {5, 0}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::CountSupport(table, itemset));
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_SupportCount);

}  // namespace

BENCHMARK_MAIN();
