// Microbenchmark of the mining substrate: exact Apriori and the
// privacy-preserving DET-GD pipeline (perturb + mine with reconstruction)
// on CENSUS-scale data. Every *Scalar variant is the pre-vertical-index /
// pre-alias-kernel implementation, kept as an in-run baseline so speedups
// are measured on the same machine and dataset.

#include <benchmark/benchmark.h>

#include "frapp_benchmark_main.h"

#include "frapp/core/gamma_diagonal.h"
#include "frapp/core/mechanism.h"
#include "frapp/core/subset_reconstruction.h"
#include "frapp/data/census.h"
#include "frapp/mining/apriori.h"
#include "frapp/mining/support_counter.h"

namespace {

using namespace frapp;

// The pre-vertical-index exact estimator: one branchy row scan per candidate.
class ScalarExactEstimator : public mining::SupportEstimator {
 public:
  explicit ScalarExactEstimator(const data::CategoricalTable& table)
      : table_(table) {}
  StatusOr<double> EstimateSupport(const mining::Itemset& itemset) override {
    return mining::SupportFraction(table_, itemset);
  }

 private:
  const data::CategoricalTable& table_;
};

// The pre-alias-kernel perturbation loop: per-row temporaries, per-column
// Bernoulli draws, per-row StatusOr-checked appends.
data::CategoricalTable ScalarGammaPerturb(const data::CategoricalTable& table,
                                          const core::GammaDiagonalMatrix& matrix,
                                          random::Pcg64& rng) {
  const size_t m = table.num_attributes();
  std::vector<size_t> cardinalities(m);
  for (size_t j = 0; j < m; ++j) cardinalities[j] = table.schema().Cardinality(j);
  data::CategoricalTable out = *data::CategoricalTable::Create(table.schema());
  out.Reserve(table.num_rows());
  std::vector<uint8_t> record(m);
  std::vector<uint8_t> perturbed(m);
  for (size_t i = 0; i < table.num_rows(); ++i) {
    for (size_t j = 0; j < m; ++j) record[j] = table.Value(i, j);
    core::PerturbRecordDiagonalForm(record, cardinalities, matrix.domain_size(),
                                    matrix.DiagonalValue(),
                                    matrix.OffDiagonalValue(), rng, &perturbed);
    (void)out.AppendRow(perturbed);
  }
  return out;
}

void BM_ExactApriori(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const data::CategoricalTable table = *data::census::MakeDataset(n, 9);
  mining::AprioriOptions options;
  options.min_support = 0.02;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::MineExact(table, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExactApriori)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_ExactAprioriScalar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const data::CategoricalTable table = *data::census::MakeDataset(n, 9);
  mining::AprioriOptions options;
  options.min_support = 0.02;
  for (auto _ : state) {
    ScalarExactEstimator estimator(table);
    benchmark::DoNotOptimize(
        mining::MineFrequentItemsets(table.schema(), estimator, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExactAprioriScalar)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_DetGdPipeline(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const data::CategoricalTable table = *data::census::MakeDataset(n, 10);
  mining::AprioriOptions options;
  options.min_support = 0.02;
  for (auto _ : state) {
    auto mechanism = *core::DetGdMechanism::Create(table.schema(), 19.0);
    random::Pcg64 rng(11);
    (void)mechanism->Prepare(table, rng);
    benchmark::DoNotOptimize(mining::MineFrequentItemsets(
        table.schema(), mechanism->estimator(), options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DetGdPipeline)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_DetGdPipelineScalar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const data::CategoricalTable table = *data::census::MakeDataset(n, 10);
  const auto matrix =
      *core::GammaDiagonalMatrix::Create(19.0, table.schema().DomainSize());
  const auto reconstructor =
      *core::GammaSubsetReconstructor::Create(19.0, table.schema().DomainSize());
  mining::AprioriOptions options;
  options.min_support = 0.02;
  for (auto _ : state) {
    random::Pcg64 rng(11);
    const data::CategoricalTable perturbed = ScalarGammaPerturb(table, matrix, rng);
    core::GammaSupportEstimator estimator(table.schema(), reconstructor, perturbed,
                                          /*use_vertical_index=*/false);
    benchmark::DoNotOptimize(
        mining::MineFrequentItemsets(table.schema(), estimator, options));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DetGdPipelineScalar)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_SupportCount(benchmark::State& state) {
  const data::CategoricalTable table = *data::census::MakeDataset(50000, 12);
  const mining::Itemset itemset = *mining::Itemset::Create(
      {{0, 0}, {3, 0}, {4, 1}, {5, 0}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::CountSupport(table, itemset));
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_SupportCount);

void BM_SupportCountVertical(benchmark::State& state) {
  const data::CategoricalTable table = *data::census::MakeDataset(50000, 12);
  const mining::VerticalIndex index = mining::VerticalIndex::Build(table);
  const mining::Itemset itemset = *mining::Itemset::Create(
      {{0, 0}, {3, 0}, {4, 1}, {5, 0}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.CountSupport(itemset));
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_SupportCountVertical);

void BM_VerticalIndexBuild(benchmark::State& state) {
  const data::CategoricalTable table = *data::census::MakeDataset(50000, 12);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mining::VerticalIndex::Build(table));
  }
  state.SetItemsProcessed(state.iterations() * table.num_rows());
}
BENCHMARK(BM_VerticalIndexBuild);

}  // namespace

FRAPP_BENCHMARK_MAIN();
