// Reproduces paper Figure 2: support error (a), false negatives (b) and
// false positives (c) versus frequent-itemset length on HEALTH, for DET-GD,
// RAN-GD (alpha = gamma*x/2), MASK and C&P.

#include "fig_errors_common.h"

int main() {
  using namespace frapp;
  const data::CategoricalTable health =
      bench::Unwrap(data::health::MakeDataset(), "health data");
  bench::RunErrorFigure(
      "Figure 2: HEALTH mining errors (DET-GD / RAN-GD / MASK / C&P)", health,
      /*perturb_seed=*/20050702);
  return 0;
}
