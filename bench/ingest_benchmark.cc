// Streaming CSV ingest vs. preloaded table: the memory/time trade of the
// end-to-end streaming pipeline on CENSUS 50k (DET-GD, supmin = 2%).
//
//   BM_PreloadedCsvPipeline  ReadCsv materializes the whole table, then the
//                            pipeline streams in-memory shards from it.
//   BM_StreamingCsvPipeline  CsvTableSource parses one chunk-quantum shard
//                            at a time; no full table ever exists.
//   BM_StreamingSynthetic    generator-fed pipeline, rows created on demand.
//
// Counters:
//   peak_perturbed_bytes   high-water mark of perturbed rows alive at once
//                          (the pipeline's O(in-flight shards x shard) bound)
//   source_table_bytes     categorical rows materialized by the source at
//                          once: whole table when preloaded, one shard when
//                          streamed
//   max_shard_rows, shards pipeline shape
//   vm_hwm_kib             process peak RSS (Linux VmHWM; process-lifetime
//                          monotone, so compare across separate runs)
//
// Emitted to BENCH_ingest.json by tools/run_benchmarks.sh.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "frapp/core/mechanism.h"
#include "frapp/data/census.h"
#include "frapp/data/csv.h"
#include "frapp/pipeline/privacy_pipeline.h"
#include "frapp/pipeline/table_source.h"

namespace {

using namespace frapp;

constexpr size_t kRows = 50000;
constexpr uint64_t kDataSeed = 10;

/// Peak resident set (VmHWM) in KiB, 0 when unavailable.
double VmHwmKib() {
  std::ifstream status("/proc/self/status");
  std::string token;
  while (status >> token) {
    if (token == "VmHWM:") {
      double kib = 0.0;
      status >> kib;
      return kib;
    }
  }
  return 0.0;
}

/// The benchmark's shared CSV fixture on disk (written once).
const std::string& CsvPath() {
  static const std::string* path = [] {
    auto* p = new std::string("/tmp/frapp_ingest_benchmark.csv");
    const data::CategoricalTable table = *data::census::MakeDataset(kRows, kDataSeed);
    if (!data::WriteCsv(table, *p).ok()) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", p->c_str());
      std::exit(1);
    }
    return p;
  }();
  return *path;
}

pipeline::PipelineOptions Options() {
  pipeline::PipelineOptions options;
  options.num_shards = 0;  // one shard per chunk quantum
  options.num_threads = 1;
  options.perturb_seed = 11;
  options.mining.min_support = 0.02;
  return options;
}

void ReportStats(benchmark::State& state, const pipeline::PipelineStats& stats,
                 size_t source_table_rows) {
  const data::CategoricalSchema schema = data::census::Schema();
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["shards"] = static_cast<double>(stats.num_shards);
  state.counters["max_shard_rows"] = static_cast<double>(stats.max_shard_rows);
  state.counters["peak_perturbed_bytes"] =
      static_cast<double>(stats.peak_inflight_perturbed_bytes);
  state.counters["source_table_bytes"] = static_cast<double>(
      source_table_rows * schema.num_attributes());
  state.counters["vm_hwm_kib"] = VmHwmKib();
}

void BM_PreloadedCsvPipeline(benchmark::State& state) {
  const data::CategoricalSchema schema = data::census::Schema();
  pipeline::PipelineStats stats;
  for (auto _ : state) {
    // Materialize the entire table, then mine it.
    StatusOr<data::CategoricalTable> table = data::ReadCsv(CsvPath(), schema);
    if (!table.ok()) {
      state.SkipWithError(table.status().ToString().c_str());
      return;
    }
    auto mechanism = *core::DetGdMechanism::Create(schema, 19.0);
    StatusOr<pipeline::PipelineResult> result =
        pipeline::PrivacyPipeline(Options()).Run(*mechanism, *table);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    stats = result->stats;
    benchmark::DoNotOptimize(result->mined);
  }
  ReportStats(state, stats, kRows);
}
BENCHMARK(BM_PreloadedCsvPipeline)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_StreamingCsvPipeline(benchmark::State& state) {
  const data::CategoricalSchema schema = data::census::Schema();
  pipeline::PipelineStats stats;
  size_t max_shard_rows = 0;
  for (auto _ : state) {
    // One chunk-quantum shard of rows in memory at a time.
    StatusOr<pipeline::CsvTableSource> source =
        pipeline::CsvTableSource::Open(CsvPath(), schema);
    if (!source.ok()) {
      state.SkipWithError(source.status().ToString().c_str());
      return;
    }
    auto mechanism = *core::DetGdMechanism::Create(schema, 19.0);
    StatusOr<pipeline::PipelineResult> result =
        pipeline::PrivacyPipeline(Options()).Run(*mechanism, *source);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    stats = result->stats;
    max_shard_rows = result->stats.max_shard_rows;
    benchmark::DoNotOptimize(result->mined);
  }
  ReportStats(state, stats, max_shard_rows);
}
BENCHMARK(BM_StreamingCsvPipeline)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_StreamingSyntheticPipeline(benchmark::State& state) {
  const data::CategoricalSchema schema = data::census::Schema();
  pipeline::PipelineStats stats;
  size_t max_shard_rows = 0;
  for (auto _ : state) {
    StatusOr<pipeline::SyntheticTableSource> source =
        pipeline::SyntheticTableSource::Create(*data::census::Generator(),
                                               kRows, kDataSeed);
    if (!source.ok()) {
      state.SkipWithError(source.status().ToString().c_str());
      return;
    }
    auto mechanism = *core::DetGdMechanism::Create(schema, 19.0);
    StatusOr<pipeline::PipelineResult> result =
        pipeline::PrivacyPipeline(Options()).Run(*mechanism, *source);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    stats = result->stats;
    max_shard_rows = result->stats.max_shard_rows;
    benchmark::DoNotOptimize(result->mined);
  }
  ReportStats(state, stats, max_shard_rows);
}
BENCHMARK(BM_StreamingSyntheticPipeline)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
