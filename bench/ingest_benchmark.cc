// Streaming ingest paths vs. preloaded table: the memory/time trade of the
// end-to-end streaming pipeline on CENSUS 50k (DET-GD, supmin = 2%).
//
//   BM_PreloadedCsvPipeline       ReadCsv materializes the whole table, then
//                                 the pipeline streams in-memory shards.
//   BM_StreamingCsvPipeline       CsvTableSource parses one chunk-quantum
//                                 shard at a time; no full table ever exists.
//   BM_StreamingCsvPrefetch...    same, pulled through the
//                                 PrefetchingTableSource producer thread —
//                                 the next shard parses while the pipeline
//                                 perturbs/counts the current one.
//   BM_StreamingBinaryPipeline    BinaryTableSource reads the pre-tokenized
//                                 shard file (data/shard_io.h): no text
//                                 parsing at all.
//   BM_StreamingBinaryPrefetch... the full fast path: binary shards behind
//                                 the producer thread.
//   BM_StreamingSynthetic         generator-fed pipeline, rows on demand.
//
// Counters:
//   peak_perturbed_bytes   high-water mark of perturbed rows alive at once
//                          (the pipeline's O(in-flight shards x shard) bound)
//   source_table_bytes     categorical rows materialized by the source at
//                          once: whole table when preloaded, one shard when
//                          streamed
//   source_wait_ms         ingest latency left on the pipeline's critical
//                          path (blocked in NextShard)
//   producer_parse_ms      ingest work the prefetch producer overlapped with
//                          compute (0 when prefetch is off)
//   max_shard_rows, shards pipeline shape
//   vm_hwm_kib             process peak RSS (Linux VmHWM; process-lifetime
//                          monotone, so compare across separate runs)
//
// Emitted to BENCH_ingest.json by tools/run_benchmarks.sh. Single-core
// caveat: with one core the producer thread time-slices against the
// workers, so prefetch shows up in source_wait_ms/producer_parse_ms rather
// than wall-clock; multi-core hosts realize the overlap as wall-clock.
//
// Build & run:  ./build/ingest_benchmark

#include <benchmark/benchmark.h>

#include "frapp_benchmark_main.h"

#include <cstdio>
#include <fstream>
#include <string>

#include "frapp/core/mechanism.h"
#include "frapp/data/census.h"
#include "frapp/data/csv.h"
#include "frapp/data/shard_io.h"
#include "frapp/pipeline/privacy_pipeline.h"
#include "frapp/pipeline/table_source.h"

namespace {

using namespace frapp;

constexpr size_t kRows = 50000;
constexpr uint64_t kDataSeed = 10;

/// Peak resident set (VmHWM) in KiB, 0 when unavailable.
double VmHwmKib() {
  std::ifstream status("/proc/self/status");
  std::string token;
  while (status >> token) {
    if (token == "VmHWM:") {
      double kib = 0.0;
      status >> kib;
      return kib;
    }
  }
  return 0.0;
}

/// The benchmark's shared CSV fixture on disk (written once).
const std::string& CsvPath() {
  static const std::string* path = [] {
    auto* p = new std::string("/tmp/frapp_ingest_benchmark.csv");
    const data::CategoricalTable table = *data::census::MakeDataset(kRows, kDataSeed);
    if (!data::WriteCsv(table, *p).ok()) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", p->c_str());
      std::exit(1);
    }
    return p;
  }();
  return *path;
}

/// The same rows pre-tokenized in the binary shard format (what a
/// `frapp convert` of CsvPath() produces).
const std::string& BinaryPath() {
  static const std::string* path = [] {
    auto* p = new std::string("/tmp/frapp_ingest_benchmark.bin");
    const data::CategoricalTable table = *data::census::MakeDataset(kRows, kDataSeed);
    if (!data::WriteBinaryTable(table, *p).ok()) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", p->c_str());
      std::exit(1);
    }
    return p;
  }();
  return *path;
}

pipeline::PipelineOptions Options(bool prefetch = false) {
  pipeline::PipelineOptions options;
  options.num_shards = 0;  // one shard per chunk quantum
  options.num_threads = 1;
  options.prefetch_source = prefetch;
  options.perturb_seed = 11;
  options.mining.min_support = 0.02;
  return options;
}

void ReportStats(benchmark::State& state, const pipeline::PipelineStats& stats,
                 size_t source_table_rows) {
  const data::CategoricalSchema schema = data::census::Schema();
  state.SetItemsProcessed(state.iterations() * kRows);
  state.counters["shards"] = static_cast<double>(stats.num_shards);
  state.counters["max_shard_rows"] = static_cast<double>(stats.max_shard_rows);
  state.counters["peak_perturbed_bytes"] =
      static_cast<double>(stats.peak_inflight_perturbed_bytes);
  state.counters["source_table_bytes"] = static_cast<double>(
      source_table_rows * schema.num_attributes());
  state.counters["source_wait_ms"] =
      static_cast<double>(stats.source_wait_nanos) / 1e6;
  state.counters["producer_parse_ms"] =
      static_cast<double>(stats.producer_parse_nanos) / 1e6;
  state.counters["vm_hwm_kib"] = VmHwmKib();
}

/// Shared body of the streamed-source benchmarks: open -> run -> report.
template <typename SourceT>
void RunStreamedBenchmark(benchmark::State& state, bool prefetch,
                          StatusOr<SourceT> (*open)()) {
  pipeline::PipelineStats stats;
  size_t max_shard_rows = 0;
  const data::CategoricalSchema schema = data::census::Schema();
  for (auto _ : state) {
    StatusOr<SourceT> source = open();
    if (!source.ok()) {
      state.SkipWithError(source.status().ToString().c_str());
      return;
    }
    auto mechanism = *core::DetGdMechanism::Create(schema, 19.0);
    StatusOr<pipeline::PipelineResult> result =
        pipeline::PrivacyPipeline(Options(prefetch)).Run(*mechanism, *source);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    stats = result->stats;
    max_shard_rows = result->stats.max_shard_rows;
    benchmark::DoNotOptimize(result->mined);
  }
  ReportStats(state, stats, max_shard_rows);
}

StatusOr<pipeline::CsvTableSource> OpenCsv() {
  return pipeline::CsvTableSource::Open(CsvPath(), data::census::Schema());
}

StatusOr<pipeline::BinaryTableSource> OpenBinary() {
  return pipeline::BinaryTableSource::Open(BinaryPath(),
                                           data::census::Schema());
}

void BM_PreloadedCsvPipeline(benchmark::State& state) {
  const data::CategoricalSchema schema = data::census::Schema();
  pipeline::PipelineStats stats;
  for (auto _ : state) {
    // Materialize the entire table, then mine it.
    StatusOr<data::CategoricalTable> table = data::ReadCsv(CsvPath(), schema);
    if (!table.ok()) {
      state.SkipWithError(table.status().ToString().c_str());
      return;
    }
    auto mechanism = *core::DetGdMechanism::Create(schema, 19.0);
    StatusOr<pipeline::PipelineResult> result =
        pipeline::PrivacyPipeline(Options()).Run(*mechanism, *table);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    stats = result->stats;
    benchmark::DoNotOptimize(result->mined);
  }
  ReportStats(state, stats, kRows);
}
BENCHMARK(BM_PreloadedCsvPipeline)->Unit(benchmark::kMillisecond)->UseRealTime();

// One chunk-quantum shard of rows in memory at a time.
void BM_StreamingCsvPipeline(benchmark::State& state) {
  RunStreamedBenchmark(state, /*prefetch=*/false, OpenCsv);
}
BENCHMARK(BM_StreamingCsvPipeline)->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_StreamingCsvPrefetchPipeline(benchmark::State& state) {
  RunStreamedBenchmark(state, /*prefetch=*/true, OpenCsv);
}
BENCHMARK(BM_StreamingCsvPrefetchPipeline)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_StreamingBinaryPipeline(benchmark::State& state) {
  RunStreamedBenchmark(state, /*prefetch=*/false, OpenBinary);
}
BENCHMARK(BM_StreamingBinaryPipeline)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_StreamingBinaryPrefetchPipeline(benchmark::State& state) {
  RunStreamedBenchmark(state, /*prefetch=*/true, OpenBinary);
}
BENCHMARK(BM_StreamingBinaryPrefetchPipeline)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_StreamingSyntheticPipeline(benchmark::State& state) {
  const data::CategoricalSchema schema = data::census::Schema();
  pipeline::PipelineStats stats;
  size_t max_shard_rows = 0;
  for (auto _ : state) {
    StatusOr<pipeline::SyntheticTableSource> source =
        pipeline::SyntheticTableSource::Create(*data::census::Generator(),
                                               kRows, kDataSeed);
    if (!source.ok()) {
      state.SkipWithError(source.status().ToString().c_str());
      return;
    }
    auto mechanism = *core::DetGdMechanism::Create(schema, 19.0);
    StatusOr<pipeline::PipelineResult> result =
        pipeline::PrivacyPipeline(Options()).Run(*mechanism, *source);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    stats = result->stats;
    max_shard_rows = result->stats.max_shard_rows;
    benchmark::DoNotOptimize(result->mined);
  }
  ReportStats(state, stats, max_shard_rows);
}
BENCHMARK(BM_StreamingSyntheticPipeline)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

FRAPP_BENCHMARK_MAIN();
