// Shared helpers for the experiment-reproduction binaries. Each bench
// prints the rows/series of one table or figure from the paper.

#ifndef FRAPP_BENCH_BENCH_UTIL_H_
#define FRAPP_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "frapp/common/statusor.h"
#include "frapp/core/mechanism.h"
#include "frapp/data/census.h"
#include "frapp/data/health.h"
#include "frapp/eval/experiment.h"
#include "frapp/eval/reporting.h"
#include "frapp/mining/apriori.h"

namespace frapp {
namespace bench {

/// Paper Section 7 parameters.
inline constexpr double kGamma = 19.0;           // (rho1, rho2) = (5%, 50%)
inline constexpr double kMinSupport = 0.02;      // supmin = 2%
inline constexpr size_t kCutPasteK = 3;          // C&P cutoff
inline constexpr double kCutPasteRho = 0.494;    // C&P paste probability

/// Aborts with a message when a StatusOr is an error (benches are top-level
/// programs; failing loudly is correct).
template <typename T>
T Unwrap(StatusOr<T> value, const char* what) {
  if (!value.ok()) {
    std::cerr << "FATAL (" << what << "): " << value.status().ToString() << "\n";
    std::exit(1);
  }
  return *std::move(value);
}

inline void UnwrapStatus(const Status& status, const char* what) {
  if (!status.ok()) {
    std::cerr << "FATAL (" << what << "): " << status.ToString() << "\n";
    std::exit(1);
  }
}

/// The four mechanisms of the paper's Section 7 study, configured for
/// `schema`. RAN-GD uses alpha = gamma*x/2 as in Figures 1-2.
inline std::vector<std::unique_ptr<core::Mechanism>> PaperMechanisms(
    const data::CategoricalSchema& schema) {
  std::vector<std::unique_ptr<core::Mechanism>> mechanisms;
  mechanisms.push_back(
      Unwrap(core::DetGdMechanism::Create(schema, kGamma), "DET-GD"));
  const double x = 1.0 / (kGamma + static_cast<double>(schema.DomainSize()) - 1.0);
  mechanisms.push_back(Unwrap(
      core::RanGdMechanism::Create(schema, kGamma, kGamma * x / 2.0), "RAN-GD"));
  mechanisms.push_back(Unwrap(core::MaskMechanism::Create(schema, kGamma), "MASK"));
  mechanisms.push_back(Unwrap(
      core::CutPasteMechanism::Create(schema, kCutPasteK, kCutPasteRho), "C&P"));
  return mechanisms;
}

/// Mines the exact frequent itemsets at the paper's threshold.
inline mining::AprioriResult MineTruth(const data::CategoricalTable& table) {
  mining::AprioriOptions options;
  options.min_support = kMinSupport;
  return Unwrap(mining::MineExact(table, options), "exact mining");
}

}  // namespace bench
}  // namespace frapp

#endif  // FRAPP_BENCH_BENCH_UTIL_H_
