// Incremental append-only mining on CENSUS 50k: a store-backed re-mine
// after data growth vs the from-scratch pipeline it is bit-identical to.
//
//   BM_FullRemine/<rows>/<supmin*100>
//       pipeline::PrivacyPipeline over the grown table — what every re-mine
//       costs without the count store.
//   BM_IncrementalRemine/<rows>/<supmin*100>
//       store::AppendAndMine against a store primed at 50 000 rows: only
//       the appended chunks and the partial tail are perturbed and counted;
//       stored candidates merge as vector adds and the lattice walk re-runs
//       on the merged totals. The timed region includes everything a real
//       re-mine pays (source open, delta perturb, count, walk, commit).
//
// Row points: 55 000 is the acceptance scenario (+10% growth, all of it in
// the partial tail); 58 192 / 82 768 / 181 072 append +1 / +4 / +16 whole
// chunks past the 50 000-row base. The supmin sweep (0.02 / 0.05 / 0.10) is
// reported because the speedup is supmin-dependent: at 0.02 the shared
// candidate-generation + lattice-walk cost (identical in both paths)
// compresses the ratio; at 0.10 the delta work dominates and the ratio
// reflects the chunk arithmetic.
//
// Counters (per iteration, from IncrementalStats):
//   delta_chunks        whole chunks perturbed + counted this run
//   tail_rows           partial-tail rows re-perturbed every run
//   store_hits          candidates served by merging a stored vector
//   superset_fallbacks  candidates recounted from the stored substrate
//
// Emitted to BENCH_incremental.json by tools/run_benchmarks.sh.
//
// Build & run:  ./build/incremental_benchmark

#include <benchmark/benchmark.h>

#include "frapp_benchmark_main.h"

#include <algorithm>
#include <map>
#include <memory>
#include <vector>
#include <utility>

#include "frapp/data/census.h"
#include "frapp/data/sharded_table.h"
#include "frapp/pipeline/privacy_pipeline.h"
#include "frapp/store/incremental_mine.h"

namespace {

using namespace frapp;

constexpr size_t kBaseRows = 50000;
constexpr size_t kMaxRows = kBaseRows + 16 * data::kShardAlignmentRows;
constexpr uint64_t kDataSeed = 10;
constexpr uint64_t kPerturbSeed = 7;

const data::CategoricalTable& Prefix(size_t rows) {
  static const data::CategoricalTable* full = new data::CategoricalTable(
      *data::census::MakeDataset(kMaxRows, kDataSeed));
  static std::map<size_t, const data::CategoricalTable*> prefixes;
  const data::CategoricalTable*& entry = prefixes[rows];
  if (entry == nullptr) {
    entry = rows == kMaxRows
                ? full
                : new data::CategoricalTable(
                      *data::CopyRowRange(*full, {0, rows}));
  }
  return *entry;
}

store::SourceFactory FactoryFor(size_t rows) {
  return [rows]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
    return std::unique_ptr<pipeline::TableSource>(
        std::make_unique<pipeline::InMemoryTableSource>(Prefix(rows),
                                                        /*num_shards=*/0));
  };
}

store::IncrementalOptions OptionsFor(double supmin) {
  store::IncrementalOptions options;
  options.mining.min_support = supmin;
  options.perturb_seed = kPerturbSeed;
  options.num_threads = 1;
  options.source_id = "bench:census";
  return options;
}

void BM_FullRemine(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const double supmin = static_cast<double>(state.range(1)) / 100.0;
  const dist::MechanismSpec spec;  // DET-GD
  auto mechanism = *dist::MakeMechanism(spec, Prefix(rows).schema());

  pipeline::PipelineOptions options;
  options.num_shards = 3;
  options.num_threads = 1;
  options.perturb_seed = kPerturbSeed;
  options.mining.min_support = supmin;

  size_t itemsets = 0;
  for (auto _ : state) {
    pipeline::InMemoryTableSource source(Prefix(rows), /*num_shards=*/0);
    auto result = pipeline::PrivacyPipeline(options).Run(*mechanism, source);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    itemsets = 0;
    for (const auto& level : result->mined.by_length) {
      itemsets += level.size();
    }
    benchmark::DoNotOptimize(itemsets);
  }
  state.counters["frequent_itemsets"] = static_cast<double>(itemsets);
}

void BM_IncrementalRemine(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  const double supmin = static_cast<double>(state.range(1)) / 100.0;
  const dist::MechanismSpec spec;
  const store::IncrementalOptions options = OptionsFor(supmin);

  // Prime the store at the 50k base (untimed): the steady state a
  // long-lived deployment re-enters on every append.
  store::CountStore primed(store::MakeStoreIdentity(
      spec, Prefix(kBaseRows).schema(), options));
  {
    auto base = store::AppendAndMine(primed, spec, FactoryFor(kBaseRows),
                                     options);
    if (!base.ok()) {
      state.SkipWithError(base.status().ToString().c_str());
      return;
    }
  }

  // Growth that stays inside the tail chunk leaves the store's high-water
  // (and substrate) untouched: the run is its own fixed point, so it can
  // re-run in place — exactly a deployment re-mining after every small
  // append. Whole-chunk growth advances the high-water, so those points
  // reset an untimed scratch copy back to the primed base each iteration.
  const bool tail_only =
      rows / data::kShardAlignmentRows == kBaseRows / data::kShardAlignmentRows;

  store::CountStore scratch = primed;
  store::IncrementalStats stats;
  for (auto _ : state) {
    if (!tail_only) {
      state.PauseTiming();
      scratch = primed;
      state.ResumeTiming();
    }
    auto result =
        store::AppendAndMine(scratch, spec, FactoryFor(rows), options);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    stats = result->stats;
  }
  state.counters["delta_chunks"] = static_cast<double>(stats.delta_chunks);
  state.counters["tail_rows"] = static_cast<double>(stats.tail_rows);
  state.counters["store_hits"] = static_cast<double>(stats.store_hits);
  state.counters["superset_fallbacks"] =
      static_cast<double>(stats.superset_fallbacks);
}

// The acceptance scenario (+10% growth) across the supmin sweep, plus the
// whole-chunk growth ladder at the paper's default supmin.
void GrowthArgs(benchmark::internal::Benchmark* b) {
  for (int supmin : {2, 5, 10}) {
    b->Args({static_cast<long>(kBaseRows + kBaseRows / 10), supmin});
  }
  for (int chunks : {1, 4, 16}) {
    b->Args({static_cast<long>(kBaseRows +
                               chunks * data::kShardAlignmentRows),
             2});
  }
}

// A `min` aggregate accompanies the mean: on a noisy shared machine the
// minimum over repetitions is the faithful cost of the work itself, and it
// is what the ">= 5x at supmin 0.10" acceptance ratio is read from.
double MinOf(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

BENCHMARK(BM_FullRemine)
    ->Apply(GrowthArgs)
    ->Unit(benchmark::kMillisecond)
    ->Repetitions(7)
    ->ComputeStatistics("min", MinOf)
    ->ReportAggregatesOnly();
BENCHMARK(BM_IncrementalRemine)
    ->Apply(GrowthArgs)
    ->Unit(benchmark::kMillisecond)
    ->Repetitions(7)
    ->ComputeStatistics("min", MinOf)
    ->ReportAggregatesOnly();

}  // namespace

FRAPP_BENCHMARK_MAIN();
