// Reproduces paper Figure 3: the effect of randomizing the perturbation
// matrix (RAN-GD) as a function of the randomization half-width alpha.
//  (a) determinable posterior probability range [rho2-, rho2+] vs alpha/(gamma x)
//  (b) support error rho for length-4 itemsets on CENSUS vs alpha/(gamma x)
//  (c) the same on HEALTH,
// with the deterministic DET-GD error as the reference line.

#include <cmath>
#include <iostream>
#include <limits>

#include "bench_util.h"
#include "frapp/core/privacy.h"

namespace {

using namespace frapp;

constexpr double kPrior = 0.05;  // the paper's P(Q(u)) = 5% example
constexpr size_t kTargetLength = 4;

// Support error at the target length for one mechanism run.
double LengthError(const eval::MechanismRun& run) {
  for (const auto& acc : run.accuracy) {
    if (acc.length == kTargetLength) return acc.support_error;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

void SupportErrorSweep(const char* label, const data::CategoricalTable& table,
                       uint64_t seed) {
  const mining::AprioriResult truth = bench::MineTruth(table);
  eval::ExperimentConfig config;
  config.min_support = bench::kMinSupport;
  config.max_length = kTargetLength;
  config.perturb_seed = seed;

  // DET-GD reference.
  auto det = bench::Unwrap(
      core::DetGdMechanism::Create(table.schema(), bench::kGamma), "DET-GD");
  const eval::MechanismRun det_run =
      bench::Unwrap(eval::RunMechanism(*det, table, truth, config), "DET-GD run");
  const double det_error = LengthError(det_run);

  const double x =
      1.0 / (bench::kGamma + static_cast<double>(table.schema().DomainSize()) - 1.0);

  std::cout << label << " (support error rho for length-" << kTargetLength
            << " itemsets)\n";
  eval::TextTable out({"alpha/(gamma x)", "RAN-GD rho (%)", "DET-GD rho (%)"});
  for (int step = 0; step <= 10; ++step) {
    const double fraction = step / 10.0;
    double ran_error = det_error;
    if (fraction > 0.0) {
      auto ran = bench::Unwrap(
          core::RanGdMechanism::Create(table.schema(), bench::kGamma,
                                       fraction * bench::kGamma * x),
          "RAN-GD");
      const eval::MechanismRun run = bench::Unwrap(
          eval::RunMechanism(*ran, table, truth, config), "RAN-GD run");
      ran_error = LengthError(run);
    }
    out.AddRow({eval::Cell(fraction, 2), eval::Cell(ran_error, 4),
                eval::Cell(det_error, 4)});
  }
  out.Print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main() {
  using namespace frapp;

  std::cout << "=== Figure 3: randomizing the perturbation matrix ===\n\n";

  // (a) Posterior probability ranges (CENSUS-scale domain n = 2000).
  std::cout << "(a) Determinable posterior probability range, prior = "
            << kPrior * 100 << "%, gamma = " << bench::kGamma << ", n = 2000\n";
  eval::TextTable posterior(
      {"alpha/(gamma x)", "rho2-", "rho2 (center)", "rho2+"});
  for (int step = 0; step <= 10; ++step) {
    const double fraction = step / 10.0;
    const double x = 1.0 / (bench::kGamma + 2000.0 - 1.0);
    const core::PosteriorRange range = bench::Unwrap(
        core::RandomizedPosteriorRange(kPrior, bench::kGamma, 2000,
                                       fraction * bench::kGamma * x),
        "posterior range");
    posterior.AddRow({eval::Cell(fraction, 2), eval::Cell(range.lower, 3),
                      eval::Cell(range.center, 3), eval::Cell(range.upper, 3)});
  }
  posterior.Print(std::cout);
  std::cout << "\nExpected shape (paper): rho2+ rises toward ~1 and rho2- falls\n"
               "toward 0 as alpha grows; the center stays at the deterministic\n"
               "breach (50%). At alpha = gamma*x/2 the range is ~[33%, 60%].\n\n";

  // (b) CENSUS and (c) HEALTH support-error sweeps.
  const data::CategoricalTable census =
      bench::Unwrap(data::census::MakeDataset(), "census data");
  SupportErrorSweep("(b) CENSUS", census, 20050703);

  const data::CategoricalTable health =
      bench::Unwrap(data::health::MakeDataset(), "health data");
  SupportErrorSweep("(c) HEALTH", health, 20050704);

  std::cout << "Expected shape (paper): RAN-GD's error stays close to DET-GD's\n"
               "across the whole alpha range - the privacy gain of Figure 3(a)\n"
               "costs only marginal accuracy.\n";
  return 0;
}
