// Ablation: the paper's error analysis (Section 2.3, Eq. 9-10) in action.
// For representative itemsets of each length on CENSUS, compare the
// closed-form PREDICTED standard deviation of the reconstructed support
// (Poisson-binomial variance through the Eq. 28 inverse) against the
// EMPIRICAL spread over repeated perturbations — and derive the sample size
// a practitioner would need for reliable classification at supmin = 2%.

#include <cmath>
#include <iostream>
#include <limits>

#include "bench_util.h"
#include "frapp/core/error_analysis.h"
#include "frapp/mining/support_counter.h"

int main() {
  using namespace frapp;
  std::cout << "=== Ablation: predicted vs empirical reconstruction noise ===\n";
  std::cout << "(CENSUS, gamma = 19, DET-GD; 40 perturbation runs per row)\n\n";

  const data::CategoricalTable census =
      bench::Unwrap(data::census::MakeDataset(20000, 99), "census data");
  const data::CategoricalSchema& schema = census.schema();
  const size_t n = census.num_rows();

  auto perturber = bench::Unwrap(
      core::GammaDiagonalPerturber::Create(schema, bench::kGamma), "perturber");
  auto reconstructor = bench::Unwrap(
      core::GammaSubsetReconstructor::Create(bench::kGamma, schema.DomainSize()),
      "reconstructor");

  // One representative itemset per length: the modal category combination
  // over the first k attributes.
  std::vector<mining::Itemset> targets;
  {
    std::vector<mining::Item> items;
    const uint16_t modal_categories[6] = {0, 1, 1, 0, 1, 0};
    for (uint16_t j = 0; j < 6; ++j) {
      items.push_back(mining::Item{j, modal_categories[j]});
      targets.push_back(*mining::Itemset::Create(items));
    }
  }

  // Pre-perturb once per run; evaluate all targets on each run.
  const int runs = 40;
  std::vector<std::vector<double>> estimates(targets.size());
  random::Pcg64 rng(123);
  for (int run = 0; run < runs; ++run) {
    const data::CategoricalTable perturbed =
        bench::Unwrap(perturber.Perturb(census, rng), "perturb");
    for (size_t t = 0; t < targets.size(); ++t) {
      uint64_t n_cs = 1;
      for (const mining::Item& item : targets[t].items()) {
        n_cs *= schema.Cardinality(item.attribute);
      }
      const double sup_v = mining::SupportFraction(perturbed, targets[t]);
      estimates[t].push_back(bench::Unwrap(
          reconstructor.ReconstructSupport(sup_v, n_cs), "reconstruct"));
    }
  }

  eval::TextTable out({"length", "true sup", "predicted sigma", "empirical sigma",
                       "N for 2-sigma @ 2%"});
  for (size_t t = 0; t < targets.size(); ++t) {
    const double truth = mining::SupportFraction(census, targets[t]);
    uint64_t n_cs = 1;
    for (const mining::Item& item : targets[t].items()) {
      n_cs *= schema.Cardinality(item.attribute);
    }
    const double predicted = bench::Unwrap(
        core::ReconstructedSupportStddev(reconstructor, truth, n_cs, n),
        "stddev");
    double mean = 0.0;
    for (double e : estimates[t]) mean += e;
    mean /= runs;
    double var = 0.0;
    for (double e : estimates[t]) var += (e - mean) * (e - mean);
    const double empirical = std::sqrt(var / (runs - 1));

    std::string required = "-";
    StatusOr<double> needed = core::RequiredRecordsForSeparation(
        reconstructor, truth, bench::kMinSupport, n_cs, 2.0);
    if (needed.ok()) required = eval::Cell(*needed, 3);

    out.AddRow({std::to_string(t + 1), eval::Cell(truth, 3),
                eval::Cell(predicted, 3), eval::Cell(empirical, 3), required});
  }
  out.Print(std::cout);

  std::cout << "\nReading guide: the Eq.-10 closed form predicts the empirical\n"
               "noise within sampling error at every length, and the noise\n"
               "SHRINKS with itemset length for DET-GD (the off-diagonal mass\n"
               "(n_C/n_Cs) x decreases) — the opposite of MASK/C&P, whose noise\n"
               "explodes with length. The last column is the sample size at\n"
               "which the itemset separates from the 2% threshold by 2 sigma.\n";
  return 0;
}
