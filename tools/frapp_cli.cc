// frapp: command-line front end for the library.
//
// Subcommands:
//   frapp generate --dataset census|health [--rows N] [--seed S] --out F.csv
//       Writes a synthetic stand-in dataset as CSV.
//   frapp perturb  --dataset census|health --in F.csv --out G.csv
//                  [--rho1 0.05 --rho2 0.50] [--alpha-frac 0..1] [--seed S]
//       Client-side perturbation with the (optionally randomized)
//       gamma-diagonal mechanism.
//   frapp mine     --dataset census|health --in G.csv
//                  [--rho1 .. --rho2 ..] [--alpha-frac ..] [--minsup 0.02]
//                  [--exact] [--top K]
//       Miner-side frequent-itemset discovery. With --exact the input is
//       treated as unperturbed truth; otherwise supports are reconstructed
//       through the gamma-diagonal inverse (paper Eq. 28).
//   frapp audit    --dataset census|health [--rho1 .. --rho2 ..]
//                  [--alpha-frac ..]
//       Prints the two-step FRAPP design for the schema.
//   frapp convert  --dataset census|health --in F.csv --out F.bin
//       One-time CSV -> binary shard conversion (data/shard_io.h format):
//       later runs ingest the pre-tokenized labels with no text parsing
//       (pipeline::BinaryTableSource), the repeated-mining fast path.

#include <algorithm>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "frapp/common/string_util.h"
#include "frapp/core/designer.h"
#include "frapp/core/subset_reconstruction.h"
#include "frapp/data/census.h"
#include "frapp/data/csv.h"
#include "frapp/data/health.h"
#include "frapp/data/shard_io.h"
#include "frapp/eval/reporting.h"
#include "frapp/mining/apriori.h"
#include "frapp/mining/support_counter.h"

namespace {

using namespace frapp;

int Usage() {
  std::cerr <<
      "usage: frapp <generate|perturb|mine|audit|convert> [flags]\n"
      "  generate --dataset census|health [--rows N] [--seed S] --out F.csv\n"
      "  perturb  --dataset D --in F.csv --out G.csv [--rho1 R --rho2 R]\n"
      "           [--alpha-frac F] [--seed S]\n"
      "  mine     --dataset D --in G.csv [--rho1 R --rho2 R] [--alpha-frac F]\n"
      "           [--minsup 0.02] [--exact] [--top K]\n"
      "  audit    --dataset D [--rho1 R --rho2 R] [--alpha-frac F]\n"
      "  convert  --dataset D --in F.csv --out F.bin\n";
  return 2;
}

// Tiny flag parser: --key value pairs plus boolean --key flags.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    double out = fallback;
    auto it = values_.find(key);
    if (it != values_.end() && !ParseDouble(it->second, &out)) {
      std::cerr << "bad numeric value for --" << key << ": " << it->second << "\n";
      std::exit(2);
    }
    return out;
  }

  unsigned long long GetUint(const std::string& key,
                             unsigned long long fallback) const {
    unsigned long long out = fallback;
    auto it = values_.find(key);
    if (it != values_.end() && !ParseUint64(it->second, &out)) {
      std::cerr << "bad integer value for --" << key << ": " << it->second << "\n";
      std::exit(2);
    }
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
};

template <typename T>
T Unwrap(StatusOr<T> v) {
  if (!v.ok()) {
    std::cerr << "error: " << v.status().ToString() << "\n";
    std::exit(1);
  }
  return *std::move(v);
}

void UnwrapStatus(const Status& s) {
  if (!s.ok()) {
    std::cerr << "error: " << s.ToString() << "\n";
    std::exit(1);
  }
}

data::CategoricalSchema SchemaFor(const std::string& dataset) {
  if (dataset == "census") return data::census::Schema();
  if (dataset == "health") return data::health::Schema();
  std::cerr << "unknown --dataset '" << dataset << "' (census|health)\n";
  std::exit(2);
}

core::FrappDesign DesignFor(const data::CategoricalSchema& schema,
                            const Flags& flags) {
  core::DesignOptions options;
  options.requirement.rho1 = flags.GetDouble("rho1", 0.05);
  options.requirement.rho2 = flags.GetDouble("rho2", 0.50);
  options.randomization_fraction = flags.GetDouble("alpha-frac", 0.0);
  return Unwrap(core::DesignMechanism(schema, options));
}

int CmdGenerate(const Flags& flags) {
  const std::string dataset = flags.Get("dataset");
  const std::string out = flags.Get("out");
  if (out.empty()) return Usage();
  const size_t default_rows = dataset == "health" ? data::health::kDefaultNumRecords
                                                  : data::census::kDefaultNumRecords;
  const size_t rows = static_cast<size_t>(flags.GetUint("rows", default_rows));
  const uint64_t seed = flags.GetUint("seed", dataset == "health"
                                                  ? data::health::kDefaultSeed
                                                  : data::census::kDefaultSeed);
  const data::CategoricalTable table =
      dataset == "health" ? Unwrap(data::health::MakeDataset(rows, seed))
                          : Unwrap(data::census::MakeDataset(rows, seed));
  UnwrapStatus(data::WriteCsv(table, out));
  std::cout << "wrote " << table.num_rows() << " " << dataset << " records to "
            << out << "\n";
  return 0;
}

int CmdPerturb(const Flags& flags) {
  const data::CategoricalSchema schema = SchemaFor(flags.Get("dataset"));
  const std::string in = flags.Get("in");
  const std::string out = flags.Get("out");
  if (in.empty() || out.empty()) return Usage();

  const data::CategoricalTable original = Unwrap(data::ReadCsv(in, schema));
  core::FrappDesign design = DesignFor(schema, flags);
  std::cout << design.Summary();

  random::Pcg64 rng(flags.GetUint("seed", 7));
  UnwrapStatus(design.mechanism->Prepare(original, rng));

  // Reuse the perturber directly to fetch the perturbed table: DET-GD
  // exposes it; for RAN-GD re-run the perturber (same distribution).
  if (auto* det = dynamic_cast<core::DetGdMechanism*>(design.mechanism.get())) {
    UnwrapStatus(data::WriteCsv(det->perturbed(), out));
  } else {
    auto* ran = dynamic_cast<core::RanGdMechanism*>(design.mechanism.get());
    random::Pcg64 rng2(flags.GetUint("seed", 7));
    const data::CategoricalTable perturbed =
        Unwrap(ran->perturber().Perturb(original, rng2));
    UnwrapStatus(data::WriteCsv(perturbed, out));
  }
  std::cout << "wrote perturbed database to " << out << "\n";
  return 0;
}

int CmdMine(const Flags& flags) {
  const data::CategoricalSchema schema = SchemaFor(flags.Get("dataset"));
  const std::string in = flags.Get("in");
  if (in.empty()) return Usage();
  const data::CategoricalTable table = Unwrap(data::ReadCsv(in, schema));

  mining::AprioriOptions options;
  options.min_support = flags.GetDouble("minsup", 0.02);

  mining::AprioriResult result;
  if (flags.Has("exact")) {
    result = Unwrap(mining::MineExact(table, options));
  } else {
    // The input is a PERTURBED database: mine with reconstruction. The
    // estimator reads perturbed supports from the table and inverts Eq. 28.
    core::FrappDesign design = DesignFor(schema, flags);
    auto reconstructor = Unwrap(core::GammaSubsetReconstructor::Create(
        design.gamma, schema.DomainSize()));
    core::GammaSupportEstimator estimator(schema, reconstructor, table);
    result = Unwrap(mining::MineFrequentItemsets(schema, estimator, options));
  }

  std::cout << (flags.Has("exact") ? "exact" : "reconstructed")
            << " frequent itemsets (minsup = " << options.min_support << "):";
  for (size_t k = 1; k <= result.MaxLength(); ++k) {
    std::cout << "  L" << k << "=" << result.OfLength(k).size();
  }
  std::cout << "\n\n";

  const size_t top = static_cast<size_t>(flags.GetUint("top", 20));
  std::vector<mining::FrequentItemset> all;
  for (const auto& level : result.by_length) {
    all.insert(all.end(), level.begin(), level.end());
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.support > b.support; });
  eval::TextTable out({"support", "itemset"});
  for (size_t i = 0; i < std::min(top, all.size()); ++i) {
    out.AddRow({eval::Cell(all[i].support, 4), all[i].itemset.ToString(schema)});
  }
  out.Print(std::cout);
  return 0;
}

int CmdAudit(const Flags& flags) {
  const data::CategoricalSchema schema = SchemaFor(flags.Get("dataset"));
  const core::FrappDesign design = DesignFor(schema, flags);
  std::cout << design.Summary();
  std::cout << "domain size |S_U|     : " << schema.DomainSize() << "\n";
  std::cout << "record amplification  : " << design.mechanism->Amplification()
            << "\n";
  return 0;
}

int CmdConvert(const Flags& flags) {
  const data::CategoricalSchema schema = SchemaFor(flags.Get("dataset"));
  const std::string in = flags.Get("in");
  const std::string out = flags.Get("out");
  if (in.empty() || out.empty()) return Usage();
  // One-time offline step: parse the whole CSV (the last time its text is
  // ever parsed), then emit the pre-tokenized binary shards.
  const data::CategoricalTable table = Unwrap(data::ReadCsv(in, schema));
  UnwrapStatus(data::WriteBinaryTable(table, out));
  std::cout << "wrote " << table.num_rows() << " pre-tokenized records to "
            << out << " (schema fingerprint "
            << data::SchemaFingerprint(schema) << ")\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "perturb") return CmdPerturb(flags);
  if (command == "mine") return CmdMine(flags);
  if (command == "audit") return CmdAudit(flags);
  if (command == "convert") return CmdConvert(flags);
  return Usage();
}
