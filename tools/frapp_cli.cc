// frapp: command-line front end for the library.
//
// Subcommands:
//   frapp generate --dataset census|health [--rows N] [--seed S] --out F.csv
//       Writes a synthetic stand-in dataset as CSV.
//   frapp perturb  --dataset census|health --in F.csv --out G.csv
//                  [--rho1 0.05 --rho2 0.50] [--alpha-frac 0..1] [--seed S]
//       Client-side perturbation with the (optionally randomized)
//       gamma-diagonal mechanism.
//   frapp mine     --dataset census|health --in G.csv
//                  [--rho1 .. --rho2 ..] [--alpha-frac ..] [--minsup 0.02]
//                  [--exact] [--top K]
//       Miner-side frequent-itemset discovery. With --exact the input is
//       treated as unperturbed truth; otherwise supports are reconstructed
//       through the gamma-diagonal inverse (paper Eq. 28).
//   frapp audit    --dataset census|health [--rho1 .. --rho2 ..]
//                  [--alpha-frac ..]
//       Prints the two-step FRAPP design for the schema.
//   frapp convert  --dataset census|health --in F.csv --out F.bin
//       One-time CSV -> binary shard conversion (data/shard_io.h format):
//       later runs ingest the pre-tokenized labels with no text parsing
//       (pipeline::BinaryTableSource), the repeated-mining fast path.
//   frapp worker   --listen PORT [--bind-host 127.0.0.1] --dataset D
//                  (--in F.csv|F.bin | --rows N [--gen-seed S])
//                  [--threads T] [--once] [--idle-timeout-ms MS]
//                  [--index-cache-mb MB]
//       A frapp/dist shard worker: serves coordinator sessions on a TCP
//       port. Each session perturbs and indexes the worker's assigned row
//       range of the LOCAL data and answers candidate-count requests; rows
//       never leave the worker. Built range indexes are cached for the
//       process lifetime (keyed on source/spec/seed/range) under an LRU
//       byte budget (--index-cache-mb, default 256, 0 = unbounded), so a
//       rerun or a re-assigned range skips the ingest pass.
//       --idle-timeout-ms ends sessions whose coordinator vanished without
//       closing.
//   frapp mine ... --count-store F.frappcnt [--superset-margin F]
//                  [--window-begin ROW]
//       Incremental mine (store/incremental_mine.h): loads or creates the
//       materialized count store, perturbs and counts ONLY the chunks
//       appended since the store's high-water mark (plus the partial tail),
//       re-runs the lattice walk, and saves the store back. stdout is
//       byte-identical to the same mine without the store; stderr reports
//       delta vs total chunk counts. --window-begin expires rows below the
//       given chunk-aligned row by subtraction (windowed streams).
//   frapp append   --dataset D --out F.bin (--in NEW.csv | --rows N
//                  [--gen-seed S])
//       Grows a binary table in place (cells appended, header row count
//       patched): the producer side of the incremental flow. With --in, the
//       CSV's rows are appended verbatim; with --rows, the table grows to
//       its generated continuation (rows [old, old+N) of the deterministic
//       generator stream).
//   frapp mine ... --mechanism det-gd|ran-gd|mask|cp|ind-gd [--gamma G]
//                  [--alpha A | --alpha-frac F] [--cutoff-k K] [--rho R]
//                  [--seed S] [--minsup F] plus ONE of
//       --workers host:port,...  --rows N
//                  [--request-deadline-ms 30000] [--retry-attempts 3]
//                  [--connect-timeout-ms 5000] [--connect-retries 25]
//                  [--fault-spec "I:key=N,..."]
//           Distributed mine: coordinator-side reconstruction over remote
//           count vectors (see docs/DISTRIBUTED.md). Deadlines + retries
//           make it survive dead/hung workers: a dead worker's ranges are
//           re-assigned to survivors and results stay bit-identical.
//           --fault-spec injects a deterministic failure schedule into the
//           dialed connections (dist/fault.h grammar) for recovery drills.
//       --run-pipeline (--in F.csv|F.bin | --rows N [--gen-seed S])
//                  [--prefetch [--prefetch-parsers N]] [--pin-threads]
//           Single-process pipeline::PrivacyPipeline over the same spec —
//           prints the identical report, so `diff` proves output parity
//           with the distributed path. --prefetch parses ahead on parser
//           thread(s) (N = 0 means one per physical core); --pin-threads
//           pins the counting workers one per physical core. Both are
//           scheduling-only: the mined output is bit-identical.
//   frapp cpuinfo
//       Prints the detected ISA features, cache geometry and core topology
//       (common/cpuinfo.h) plus the counting-kernel level the dispatcher
//       resolved (mining/kernels.h, honouring FRAPP_FORCE_KERNEL).
//   frapp serve    --listen PORT [--bind-host 127.0.0.1] --dataset D
//                  (--in F.csv|F.bin | --rows N [--gen-seed S])
//                  [--threads T] [--cache-entries N] [--superset-margin F]
//       Mining-as-a-service front end (docs/SERVICE.md): a long-lived
//       process answering query frames over the dist wire protocol from a
//       result cache + count store. Concurrent identical mine queries
//       coalesce into ONE run; repeat queries are cache hits; sub-supmin /
//       top-k / rule queries against an already-mined problem are answered
//       from materialized count vectors with zero re-perturbation. SIGINT/
//       SIGTERM shut down gracefully: in-flight queries complete and their
//       responses are delivered before sessions close.
//   frapp query    --connect HOST:PORT --dataset D
//                  [--query mine|topk|rules|stats] --mechanism M [--seed S]
//                  [--minsup 0.02] [--min-confidence C] [--top K]
//       One query against a running `frapp serve`. --query mine prints the
//       EXACT report of `frapp mine --run-pipeline` over the same spec
//       (byte-diffable); topk/rules print their tables; stats prints the
//       server counters. stderr carries the per-query cache outcome and
//       server stats snapshot (what the smoke scripts assert on).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "frapp/common/cpuinfo.h"
#include "frapp/common/parallel.h"
#include "frapp/common/string_util.h"
#include "frapp/core/designer.h"
#include "frapp/core/subset_reconstruction.h"
#include "frapp/data/census.h"
#include "frapp/data/csv.h"
#include "frapp/data/health.h"
#include "frapp/data/shard_io.h"
#include "frapp/dist/coordinator.h"
#include "frapp/dist/fault.h"
#include "frapp/dist/index_cache.h"
#include "frapp/dist/mechanism_spec.h"
#include "frapp/dist/retry.h"
#include "frapp/dist/transport.h"
#include "frapp/dist/worker.h"
#include "frapp/eval/reporting.h"
#include "frapp/mining/apriori.h"
#include "frapp/mining/kernels.h"
#include "frapp/mining/support_counter.h"
#include "frapp/pipeline/privacy_pipeline.h"
#include "frapp/serve/broker.h"
#include "frapp/serve/client.h"
#include "frapp/serve/query_wire.h"
#include "frapp/serve/server.h"
#include "frapp/store/incremental_mine.h"

namespace {

using namespace frapp;

int Usage() {
  std::cerr <<
      "usage: frapp <generate|perturb|mine|append|audit|convert|worker|serve|query|cpuinfo> [flags]\n"
      "  generate --dataset census|health [--rows N] [--seed S] --out F.csv\n"
      "  perturb  --dataset D --in F.csv --out G.csv [--rho1 R --rho2 R]\n"
      "           [--alpha-frac F] [--seed S]\n"
      "  mine     --dataset D --in G.csv [--rho1 R --rho2 R] [--alpha-frac F]\n"
      "           [--minsup 0.02] [--exact] [--top K]\n"
      "  mine     --dataset D --mechanism det-gd|ran-gd|mask|cp|ind-gd\n"
      "           [--gamma 19] [--alpha A | --alpha-frac F]   (ran-gd spread)\n"
      "           [--cutoff-k 3] [--rho 0.494]                (cp operator)\n"
      "           [--seed 7] [--minsup 0.02] [--top K] plus one of\n"
      "             --workers host:port,... --rows N         (distributed)\n"
      "               [--request-deadline-ms 30000] [--retry-attempts 3]\n"
      "               [--connect-timeout-ms 5000] [--connect-retries 25]\n"
      "               [--fault-spec \"I:key=N,...\"]  (recovery drills)\n"
      "             --run-pipeline (--in F.csv|F.bin | --rows N [--gen-seed S])\n"
      "               [--prefetch [--prefetch-parsers N]] [--pin-threads]\n"
      "             --count-store F.frappcnt (--in F.csv|F.bin | --rows N)\n"
      "               [--superset-margin 0.25] [--window-begin ROW]\n"
      "  append   --dataset D --out F.bin (--in NEW.csv | --rows N [--gen-seed S])\n"
      "  audit    --dataset D [--rho1 R --rho2 R] [--alpha-frac F]\n"
      "  convert  --dataset D --in F.csv --out F.bin\n"
      "  worker   --listen PORT [--bind-host 127.0.0.1] --dataset D\n"
      "           (--in F.csv|F.bin | --rows N [--gen-seed S])\n"
      "           [--threads T] [--pin-threads] [--once]\n"
      "           [--idle-timeout-ms MS] [--index-cache-mb MB]\n"
      "  serve    --listen PORT [--bind-host 127.0.0.1] --dataset D\n"
      "           (--in F.csv|F.bin | --rows N [--gen-seed S])\n"
      "           [--threads T] [--cache-entries 64] [--superset-margin 0.25]\n"
      "  query    --connect HOST:PORT --dataset D [--query mine|topk|rules|stats]\n"
      "           --mechanism det-gd|ran-gd|mask|cp|ind-gd [--gamma G]\n"
      "           [--alpha A | --alpha-frac F] [--cutoff-k K] [--rho R]\n"
      "           [--seed 7] [--minsup 0.02] [--min-confidence C] [--top 20]\n"
      "  cpuinfo  (prints ISA/cache/topology detection + kernel dispatch;\n"
      "            FRAPP_FORCE_KERNEL=scalar|avx2|avx512 overrides dispatch)\n";
  return 2;
}

// Tiny flag parser: --key value pairs plus boolean --key flags.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string Get(const std::string& key, const std::string& fallback = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  double GetDouble(const std::string& key, double fallback) const {
    double out = fallback;
    auto it = values_.find(key);
    if (it != values_.end() && !ParseDouble(it->second, &out)) {
      std::cerr << "bad numeric value for --" << key << ": " << it->second << "\n";
      std::exit(2);
    }
    return out;
  }

  unsigned long long GetUint(const std::string& key,
                             unsigned long long fallback) const {
    unsigned long long out = fallback;
    auto it = values_.find(key);
    if (it != values_.end() && !ParseUint64(it->second, &out)) {
      std::cerr << "bad integer value for --" << key << ": " << it->second << "\n";
      std::exit(2);
    }
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
};

template <typename T>
T Unwrap(StatusOr<T> v) {
  if (!v.ok()) {
    std::cerr << "error: " << v.status().ToString() << "\n";
    std::exit(1);
  }
  return *std::move(v);
}

void UnwrapStatus(const Status& s) {
  if (!s.ok()) {
    std::cerr << "error: " << s.ToString() << "\n";
    std::exit(1);
  }
}

data::CategoricalSchema SchemaFor(const std::string& dataset) {
  if (dataset == "census") return data::census::Schema();
  if (dataset == "health") return data::health::Schema();
  std::cerr << "unknown --dataset '" << dataset << "' (census|health)\n";
  std::exit(2);
}

core::FrappDesign DesignFor(const data::CategoricalSchema& schema,
                            const Flags& flags) {
  core::DesignOptions options;
  options.requirement.rho1 = flags.GetDouble("rho1", 0.05);
  options.requirement.rho2 = flags.GetDouble("rho2", 0.50);
  options.randomization_fraction = flags.GetDouble("alpha-frac", 0.0);
  return Unwrap(core::DesignMechanism(schema, options));
}

int CmdGenerate(const Flags& flags) {
  const std::string dataset = flags.Get("dataset");
  const std::string out = flags.Get("out");
  if (out.empty()) return Usage();
  const size_t default_rows = dataset == "health" ? data::health::kDefaultNumRecords
                                                  : data::census::kDefaultNumRecords;
  const size_t rows = static_cast<size_t>(flags.GetUint("rows", default_rows));
  const uint64_t seed = flags.GetUint("seed", dataset == "health"
                                                  ? data::health::kDefaultSeed
                                                  : data::census::kDefaultSeed);
  const data::CategoricalTable table =
      dataset == "health" ? Unwrap(data::health::MakeDataset(rows, seed))
                          : Unwrap(data::census::MakeDataset(rows, seed));
  UnwrapStatus(data::WriteCsv(table, out));
  std::cout << "wrote " << table.num_rows() << " " << dataset << " records to "
            << out << "\n";
  return 0;
}

int CmdPerturb(const Flags& flags) {
  const data::CategoricalSchema schema = SchemaFor(flags.Get("dataset"));
  const std::string in = flags.Get("in");
  const std::string out = flags.Get("out");
  if (in.empty() || out.empty()) return Usage();

  const data::CategoricalTable original = Unwrap(data::ReadCsv(in, schema));
  core::FrappDesign design = DesignFor(schema, flags);
  std::cout << design.Summary();

  random::Pcg64 rng(flags.GetUint("seed", 7));
  UnwrapStatus(design.mechanism->Prepare(original, rng));

  // Reuse the perturber directly to fetch the perturbed table: DET-GD
  // exposes it; for RAN-GD re-run the perturber (same distribution).
  if (auto* det = dynamic_cast<core::DetGdMechanism*>(design.mechanism.get())) {
    UnwrapStatus(data::WriteCsv(det->perturbed(), out));
  } else {
    auto* ran = dynamic_cast<core::RanGdMechanism*>(design.mechanism.get());
    random::Pcg64 rng2(flags.GetUint("seed", 7));
    const data::CategoricalTable perturbed =
        Unwrap(ran->perturber().Perturb(original, rng2));
    UnwrapStatus(data::WriteCsv(perturbed, out));
  }
  std::cout << "wrote perturbed database to " << out << "\n";
  return 0;
}

// Shared by every mine mode, so single-process, distributed, incremental,
// and served runs can be diffed for bit-parity: identical supports print
// identical text. The format itself lives in eval::PrintMiningReport (one
// renderer for the CLI, `frapp query`, and the golden fixtures freezing it).
void PrintMiningReport(const data::CategoricalSchema& schema,
                       const mining::AprioriResult& result,
                       const std::string& label, double minsup, size_t top) {
  eval::PrintMiningReport(std::cout, schema, result, label, minsup, top);
}

dist::MechanismSpec SpecFromFlags(const Flags& flags,
                                  const data::CategoricalSchema& schema) {
  dist::MechanismSpec spec;
  spec.kind = Unwrap(dist::ParseMechanismKind(flags.Get("mechanism", "det-gd")));
  spec.gamma = flags.GetDouble("gamma", 19.0);
  // RAN-GD spread: --alpha is the absolute spread; --alpha-frac mirrors the
  // legacy perturb/audit convention (fraction of the max gamma * x, with
  // x = 1 / (gamma + |S_U| - 1)).
  spec.alpha = flags.GetDouble("alpha", 0.0);
  if (flags.Has("alpha-frac")) {
    const double x =
        1.0 / (spec.gamma + static_cast<double>(schema.DomainSize()) - 1.0);
    spec.alpha = flags.GetDouble("alpha-frac", 0.0) * spec.gamma * x;
  }
  spec.cutoff_k = flags.GetUint("cutoff-k", 3);
  spec.rho = flags.GetDouble("rho", 0.494);
  return spec;
}

size_t DefaultRows(const std::string& dataset) {
  return dataset == "health" ? data::health::kDefaultNumRecords
                             : data::census::kDefaultNumRecords;
}

uint64_t DefaultGenSeed(const std::string& dataset) {
  return dataset == "health" ? data::health::kDefaultSeed
                             : data::census::kDefaultSeed;
}

/// A TableSource plus whatever keeps it fed (generated tables stay alive in
/// `table`). Resolves --in F.csv / --in F.bin / generated --rows data the
/// same way for `frapp worker` and `frapp mine --run-pipeline`.
struct ResolvedSource {
  std::shared_ptr<const data::CategoricalTable> table;  // generated data only
  std::unique_ptr<pipeline::TableSource> source;
};

StatusOr<ResolvedSource> MakeSource(const Flags& flags,
                                    const data::CategoricalSchema& schema) {
  const std::string dataset = flags.Get("dataset");
  const std::string in = flags.Get("in");
  ResolvedSource resolved;
  if (in.empty()) {
    // Generated stand-in data: deterministic in (--rows, --gen-seed), so
    // every process given the same flags holds the same table.
    const size_t rows =
        static_cast<size_t>(flags.GetUint("rows", DefaultRows(dataset)));
    const uint64_t seed = flags.GetUint("gen-seed", DefaultGenSeed(dataset));
    data::CategoricalTable table =
        dataset == "health" ? *data::health::MakeDataset(rows, seed)
                            : *data::census::MakeDataset(rows, seed);
    resolved.table =
        std::make_shared<const data::CategoricalTable>(std::move(table));
    resolved.source = std::make_unique<pipeline::InMemoryTableSource>(
        *resolved.table, /*num_shards=*/0);
    return resolved;
  }
  if (in.size() > 4 && in.compare(in.size() - 4, 4, ".bin") == 0) {
    FRAPP_ASSIGN_OR_RETURN(pipeline::BinaryTableSource source,
                           pipeline::BinaryTableSource::Open(in, schema));
    resolved.source =
        std::make_unique<pipeline::BinaryTableSource>(std::move(source));
    return resolved;
  }
  FRAPP_ASSIGN_OR_RETURN(pipeline::CsvTableSource source,
                         pipeline::CsvTableSource::Open(in, schema));
  resolved.source =
      std::make_unique<pipeline::CsvTableSource>(std::move(source));
  return resolved;
}

/// Ties a generated table's lifetime to the TableSource handed out, so a
/// source factory's product can outlive the factory call.
class OwningSource : public pipeline::TableSource {
 public:
  OwningSource(std::shared_ptr<const data::CategoricalTable> table,
               std::unique_ptr<pipeline::TableSource> inner)
      : table_(std::move(table)), inner_(std::move(inner)) {}
  const data::CategoricalSchema& schema() const override {
    return inner_->schema();
  }
  StatusOr<bool> NextShard(pipeline::PulledShard* out) override {
    return inner_->NextShard(out);
  }
  Status SkipToRow(size_t row) override { return inner_->SkipToRow(row); }
  std::optional<size_t> TotalRows() const override {
    return inner_->TotalRows();
  }

 private:
  std::shared_ptr<const data::CategoricalTable> table_;
  std::unique_ptr<pipeline::TableSource> inner_;
};

/// The factory every long-lived consumer shares (`frapp worker` sessions,
/// `frapp mine --count-store`, `frapp serve` mine runs): each call opens a
/// fresh view of the flags' table, with generated data kept alive by the
/// returned source. `flags` and `schema` must outlive the factory.
store::SourceFactory MakeSourceFactory(const Flags& flags,
                                       const data::CategoricalSchema& schema) {
  return [&flags,
          &schema]() -> StatusOr<std::unique_ptr<pipeline::TableSource>> {
    FRAPP_ASSIGN_OR_RETURN(ResolvedSource resolved, MakeSource(flags, schema));
    if (resolved.table == nullptr) return std::move(resolved.source);
    return std::unique_ptr<pipeline::TableSource>(
        std::make_unique<OwningSource>(std::move(resolved.table),
                                       std::move(resolved.source)));
  };
}

/// Stable identity of the served/stored table across growth: a file keeps
/// its path; a generated table keeps its (dataset, seed) — never its row
/// count (the incremental-store convention).
std::string StoreSourceId(const Flags& flags) {
  const std::string in = flags.Get("in");
  if (!in.empty()) return in;
  return "gen:" + flags.Get("dataset") + ":" +
         std::to_string(
             flags.GetUint("gen-seed", DefaultGenSeed(flags.Get("dataset"))));
}

int CmdMineDistributed(const Flags& flags,
                       const data::CategoricalSchema& schema) {
  const dist::MechanismSpec spec = SpecFromFlags(flags, schema);
  if (!flags.Has("rows")) {
    std::cerr << "error: --workers needs --rows (the coordinator never "
                 "touches the data; it only plans ranges)\n";
    return 2;
  }
  const size_t total_rows = static_cast<size_t>(flags.GetUint("rows", 0));

  // One retry policy drives both dial-out and the per-request deadlines.
  // The CLI default detects hung workers after 3 x 30 s; the library
  // default (0 = no deadlines) is only for embedders that opt out.
  dist::RetryOptions retry;
  retry.max_attempts = flags.GetUint("retry-attempts", 3);
  retry.request_deadline_ms = flags.GetUint("request-deadline-ms", 30000);

  // Deterministic fault schedule for drills and tests (--fault-spec
  // "INDEX:close-send=N,...;..."); empty = no injection.
  const dist::FaultSpec fault_spec =
      Unwrap(dist::ParseFaultSpec(flags.Get("fault-spec")));

  // Dial every worker with per-attempt timeouts and backoff, so scripts
  // can launch the workers and the coordinator together.
  dist::DialOptions dial;
  dial.connect_timeout_ms = flags.GetUint("connect-timeout-ms", 5000);
  dial.retry = retry;
  dial.retry.max_attempts = flags.GetUint("connect-retries", 25);
  dial.retry.base_backoff_ms = 50;
  dial.retry.max_backoff_ms = 1000;
  std::vector<std::unique_ptr<dist::Transport>> transports;
  for (const std::string& endpoint : Split(flags.Get("workers"), ',')) {
    const size_t colon = endpoint.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "bad worker endpoint '" << endpoint << "' (host:port)\n";
      return 2;
    }
    const std::string host = endpoint.substr(0, colon);
    unsigned long long port = 0;
    if (!ParseUint64(endpoint.substr(colon + 1), &port) || port > 65535) {
      std::cerr << "bad worker port in '" << endpoint << "'\n";
      return 2;
    }
    std::unique_ptr<dist::Transport> transport =
        Unwrap(dist::TcpDial(host, static_cast<uint16_t>(port), dial));
    transports.push_back(dist::MaybeInjectFaults(
        std::move(transport), fault_spec, transports.size()));
  }

  dist::CoordinatorOptions options;
  options.perturb_seed = flags.GetUint("seed", 7);
  options.num_threads = flags.GetUint("threads", 0);
  options.retry = retry;
  auto coordinator = Unwrap(dist::Coordinator::Connect(
      std::move(transports), schema, spec, total_rows, options));

  mining::AprioriOptions mining_options;
  mining_options.min_support = flags.GetDouble("minsup", 0.02);
  const mining::AprioriResult result =
      Unwrap(coordinator->Mine(mining_options));

  PrintMiningReport(schema, result, dist::MechanismSpecName(spec),
                    mining_options.min_support,
                    static_cast<size_t>(flags.GetUint("top", 20)));
  const dist::DistStats stats = coordinator->stats();
  std::cerr << "dist: " << stats.num_workers << " worker(s), "
            << stats.total_rows << " rows (" << stats.total_chunks
            << " chunk(s)";
  if (stats.rows_appended > 0) {
    std::cerr << ", " << stats.appended_chunks << " appended";
  }
  std::cerr << "), " << stats.requests_sent
            << " requests, " << stats.bytes_sent << " B out, "
            << stats.bytes_received << " B in, merge "
            << stats.merge_nanos / 1000000.0 << " ms\n";
  if (stats.workers_failed > 0) {
    std::cerr << "dist recovery: " << stats.workers_failed
              << " worker(s) failed, " << stats.workers_alive
              << " alive, " << stats.ranges_reassigned
              << " range(s) reassigned, " << stats.rounds_restarted
              << " round(s) restarted, " << stats.deadline_retries
              << " deadline retries\n";
  }
  coordinator->Shutdown();
  return 0;
}

int CmdMinePipeline(const Flags& flags,
                    const data::CategoricalSchema& schema) {
  const dist::MechanismSpec spec = SpecFromFlags(flags, schema);
  ResolvedSource resolved = Unwrap(MakeSource(flags, schema));
  auto mechanism = Unwrap(dist::MakeMechanism(spec, schema));

  pipeline::PipelineOptions options;
  options.num_shards = flags.GetUint("shards", 1);
  options.num_threads = flags.GetUint("threads", 1);
  options.perturb_seed = flags.GetUint("seed", 7);
  options.prefetch_source = flags.Has("prefetch");
  options.prefetch_parsers = flags.GetUint("prefetch-parsers", 0);
  options.pin_threads = flags.Has("pin-threads");
  options.mining.min_support = flags.GetDouble("minsup", 0.02);
  const pipeline::PipelineResult result = Unwrap(
      pipeline::PrivacyPipeline(options).Run(*mechanism, *resolved.source));

  PrintMiningReport(schema, result.mined, dist::MechanismSpecName(spec),
                    options.mining.min_support,
                    static_cast<size_t>(flags.GetUint("top", 20)));
  std::cerr << "pipeline: " << result.stats.num_shards << " shard(s), "
            << result.stats.total_rows << " rows\n";
  return 0;
}

int CmdMineIncremental(const Flags& flags,
                       const data::CategoricalSchema& schema) {
  const dist::MechanismSpec spec = SpecFromFlags(flags, schema);
  const std::string store_path = flags.Get("count-store");
  if (store_path.empty()) return Usage();

  store::IncrementalOptions options;
  options.mining.min_support = flags.GetDouble("minsup", 0.02);
  options.perturb_seed = flags.GetUint("seed", 7);
  options.num_threads = flags.GetUint("threads", 1);
  options.superset_margin = flags.GetDouble("superset-margin", 0.25);
  options.window_begin_row = flags.GetUint("window-begin", 0);
  options.source_id = StoreSourceId(flags);

  bool created = false;
  store::CountStore store = Unwrap(store::LoadOrCreateStore(
      store_path, store::MakeStoreIdentity(spec, schema, options), &created));
  const store::IncrementalResult result = Unwrap(store::AppendAndMine(
      store, spec, MakeSourceFactory(flags, schema), options));
  UnwrapStatus(store.SaveToFile(store_path));

  // Byte-identical to the same mine without --count-store: reports diff
  // clean, which is how scripts prove the incremental path changed nothing.
  PrintMiningReport(schema, result.mined, dist::MechanismSpecName(spec),
                    options.mining.min_support,
                    static_cast<size_t>(flags.GetUint("top", 20)));
  const store::IncrementalStats& stats = result.stats;
  std::cerr << "incremental: store " << (created ? "created" : "loaded")
            << ", " << stats.total_rows << " rows, " << stats.total_chunks
            << " total chunk(s), " << stats.delta_chunks
            << " delta chunk(s) perturbed, " << stats.expired_chunks
            << " expired, " << stats.tail_rows << " tail row(s), "
            << stats.store_hits << " store hit(s), " << stats.store_misses
            << " miss(es), " << stats.superset_fallbacks
            << " fallback recount(s), " << stats.stored_entries
            << " entries stored\n";
  return 0;
}

int CmdAppend(const Flags& flags) {
  const std::string dataset = flags.Get("dataset");
  const data::CategoricalSchema schema = SchemaFor(dataset);
  const std::string out = flags.Get("out");
  if (out.empty()) return Usage();

  // The header knows the current size — needed to continue the generator
  // stream, and a cheap validity check for the CSV path too.
  data::BinaryShardReader reader =
      Unwrap(data::BinaryShardReader::Open(out, schema));
  const size_t old_rows = reader.total_rows();

  data::CategoricalTable grown = Unwrap([&]() -> StatusOr<data::CategoricalTable> {
    const std::string in = flags.Get("in");
    if (!in.empty()) return data::ReadCsv(in, schema);
    if (!flags.Has("rows")) {
      return Status::InvalidArgument(
          "append needs --in NEW.csv or --rows N (how much to grow)");
    }
    const size_t n = static_cast<size_t>(flags.GetUint("rows", 0));
    const uint64_t seed = flags.GetUint("gen-seed", DefaultGenSeed(dataset));
    // Rows [old, old+n) of the deterministic generator stream: growing in
    // steps lands on the same bytes as generating old+n rows outright.
    FRAPP_ASSIGN_OR_RETURN(
        data::CategoricalTable full,
        dataset == "health" ? data::health::MakeDataset(old_rows + n, seed)
                            : data::census::MakeDataset(old_rows + n, seed));
    return data::CopyRowRange(full, {old_rows, old_rows + n});
  }());
  UnwrapStatus(data::AppendBinaryTable(grown, out));
  std::cout << "appended " << grown.num_rows() << " rows to " << out
            << " (now " << old_rows + grown.num_rows() << " rows)\n";
  return 0;
}

int CmdMine(const Flags& flags) {
  const data::CategoricalSchema schema = SchemaFor(flags.Get("dataset"));
  if (flags.Has("workers")) return CmdMineDistributed(flags, schema);
  if (flags.Has("count-store")) return CmdMineIncremental(flags, schema);
  if (flags.Has("run-pipeline")) return CmdMinePipeline(flags, schema);

  const std::string in = flags.Get("in");
  if (in.empty()) return Usage();
  const data::CategoricalTable table = Unwrap(data::ReadCsv(in, schema));

  mining::AprioriOptions options;
  options.min_support = flags.GetDouble("minsup", 0.02);

  mining::AprioriResult result;
  if (flags.Has("exact")) {
    result = Unwrap(mining::MineExact(table, options));
  } else {
    // The input is a PERTURBED database: mine with reconstruction. The
    // estimator reads perturbed supports from the table and inverts Eq. 28.
    core::FrappDesign design = DesignFor(schema, flags);
    auto reconstructor = Unwrap(core::GammaSubsetReconstructor::Create(
        design.gamma, schema.DomainSize()));
    core::GammaSupportEstimator estimator(schema, reconstructor, table);
    result = Unwrap(mining::MineFrequentItemsets(schema, estimator, options));
  }

  PrintMiningReport(schema, result,
                    flags.Has("exact") ? "exact" : "reconstructed",
                    options.min_support,
                    static_cast<size_t>(flags.GetUint("top", 20)));
  return 0;
}

int CmdWorker(const Flags& flags) {
  const std::string dataset = flags.Get("dataset");
  const data::CategoricalSchema schema = SchemaFor(dataset);
  if (!flags.Has("listen")) return Usage();
  const unsigned long long port = flags.GetUint("listen", 0);
  if (port > 65535) {
    std::cerr << "bad --listen port\n";
    return 2;
  }

  // One ResolvedSource per session: sessions re-ingest from row 0, and
  // generated tables are shared across sessions through the flags being
  // deterministic.
  dist::WorkerOptions options(schema);
  options.num_threads = flags.GetUint("threads", 1);
  // Scheduling-only (counts are integer sums); sticky for the process.
  if (flags.Has("pin-threads")) {
    common::ThreadPool::Shared().SetPinPhysicalCores(true);
  }

  // Process-lifetime cache of built range indexes: a coordinator rerun (or
  // a re-assignment of a range this worker already built) skips the
  // ingest -> perturb -> index pass. The key needs a stable identity for
  // the local row stream: the input path, or the generator descriptor.
  // LRU-bounded so a worker reused across many jobs/seeds stays flat.
  dist::IndexCache index_cache(
      static_cast<size_t>(flags.GetUint(
          "index-cache-mb", dist::IndexCache::kDefaultMaxBytes >> 20))
      << 20);
  options.index_cache = &index_cache;
  const std::string in = flags.Get("in");
  if (!in.empty()) {
    options.source_id = in;
  } else {
    options.source_id =
        "gen:" + dataset + ":" +
        std::to_string(flags.GetUint("rows", DefaultRows(dataset))) + ":" +
        std::to_string(flags.GetUint("gen-seed", DefaultGenSeed(dataset)));
  }

  // A coordinator that vanished without closing (SIGKILL, partition) must
  // not pin the worker forever: end idle sessions cleanly and re-accept.
  options.session_idle_timeout_ms = flags.GetUint("idle-timeout-ms", 0);
  // Materializes fresh per session (sessions are rare; ingest dominates).
  options.source_factory = MakeSourceFactory(flags, schema);

  auto listener = Unwrap(dist::TcpListener::Bind(
      flags.Get("bind-host", "127.0.0.1"), static_cast<uint16_t>(port)));
  std::cout << "frapp worker listening on " << flags.Get("bind-host", "127.0.0.1")
            << ":" << listener.port() << " (dataset " << dataset << ")"
            << std::endl;
  bool last_session_failed = false;
  do {
    auto transport = Unwrap(listener.Accept());
    // Flushed before serving: scripts (tools/dist_smoke.sh's kill drill)
    // key on this line to know the worker is inside a session.
    std::cout << "accepted session" << std::endl;
    const Status session = dist::ServeWorker(*transport, options);
    last_session_failed = !session.ok();
    const dist::IndexCache::Stats cache = index_cache.stats();
    if (session.ok()) {
      std::cout << "session complete (index cache: " << cache.hits
                << " hit(s), " << cache.misses << " miss(es), "
                << cache.entries << " cached)" << std::endl;
    } else {
      std::cerr << "session failed: " << session.ToString() << std::endl;
    }
  } while (!flags.Has("once"));
  // Scripts (`--once` + wait $pid) read the exit status as "did the
  // session succeed"; a failed handshake or count pass must not exit 0.
  return last_session_failed ? 1 : 0;
}

// SIGINT/SIGTERM initiate graceful shutdown by closing the listener: the
// accept loop's failed Accept is its exit signal, and close(2) is
// async-signal-safe where mutexes and condition variables are not.
std::atomic<dist::TcpListener*> g_serve_listener{nullptr};

void ServeSignalHandler(int) {
  dist::TcpListener* listener = g_serve_listener.exchange(nullptr);
  if (listener != nullptr) listener->Close();
}

int CmdServe(const Flags& flags) {
  const std::string dataset = flags.Get("dataset");
  const data::CategoricalSchema schema = SchemaFor(dataset);
  if (!flags.Has("listen")) return Usage();
  const unsigned long long port = flags.GetUint("listen", 0);
  if (port > 65535) {
    std::cerr << "bad --listen port\n";
    return 2;
  }

  serve::BrokerOptions options(schema);
  options.source_factory = MakeSourceFactory(flags, schema);
  options.source_id = StoreSourceId(flags);
  options.num_threads = flags.GetUint("threads", 1);
  options.superset_margin = flags.GetDouble("superset-margin", 0.25);
  options.cache_entries = flags.GetUint("cache-entries", 64);
  serve::QueryBroker broker(std::move(options));
  serve::QueryServer server(&broker);

  auto listener = Unwrap(dist::TcpListener::Bind(
      flags.Get("bind-host", "127.0.0.1"), static_cast<uint16_t>(port)));
  g_serve_listener.store(&listener);
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  // Flushed before serving: scripts (tools/serve_smoke.sh) scrape the bound
  // port from this line.
  std::cout << "frapp serve listening on " << flags.Get("bind-host", "127.0.0.1")
            << ":" << listener.port() << " (dataset " << dataset << ")"
            << std::endl;
  UnwrapStatus(server.ServeLoop(listener));
  g_serve_listener.exchange(nullptr);

  const serve::BrokerStats stats = broker.stats();
  std::cerr << "serve: " << server.sessions() << " session(s), "
            << stats.queries << " quer(y/ies), " << stats.mine_runs
            << " mine run(s), " << stats.cache_hits << " cache hit(s), "
            << stats.coalesced << " coalesced, " << stats.store_hits
            << " store hit(s), " << stats.store_misses << " store miss(es), "
            << stats.cache_evictions << " eviction(s), " << stats.rejected
            << " rejected" << std::endl;
  return 0;
}

int CmdQuery(const Flags& flags) {
  const data::CategoricalSchema schema = SchemaFor(flags.Get("dataset"));
  const std::string endpoint = flags.Get("connect");
  const size_t colon = endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "bad --connect '" << endpoint << "' (host:port)\n";
    return 2;
  }
  const std::string host = endpoint.substr(0, colon);
  unsigned long long port = 0;
  if (!ParseUint64(endpoint.substr(colon + 1), &port) || port > 65535) {
    std::cerr << "bad --connect port in '" << endpoint << "'\n";
    return 2;
  }

  serve::QueryRequest request;
  const std::string kind = flags.Get("query", "mine");
  if (kind == "mine") {
    request.kind = serve::QueryKind::kMine;
  } else if (kind == "topk") {
    request.kind = serve::QueryKind::kTopK;
  } else if (kind == "rules") {
    request.kind = serve::QueryKind::kRules;
  } else if (kind == "stats") {
    request.kind = serve::QueryKind::kStats;
  } else {
    std::cerr << "unknown --query '" << kind << "' (mine|topk|rules|stats)\n";
    return 2;
  }
  request.schema_fingerprint = data::SchemaFingerprint(schema);
  request.spec = SpecFromFlags(flags, schema);
  request.perturb_seed = flags.GetUint("seed", 7);
  request.min_support = flags.GetDouble("minsup", 0.02);
  request.min_confidence = flags.GetDouble("min-confidence", 0.0);
  const size_t top = static_cast<size_t>(flags.GetUint("top", 20));
  request.top_k = top;

  // Same dial-with-backoff defaults as the distributed coordinator, so
  // scripts can launch `frapp serve` and its clients together.
  dist::DialOptions dial;
  dial.connect_timeout_ms = flags.GetUint("connect-timeout-ms", 5000);
  dial.retry.max_attempts = flags.GetUint("connect-retries", 25);
  dial.retry.base_backoff_ms = 50;
  dial.retry.max_backoff_ms = 1000;
  serve::QueryClient client(
      Unwrap(dist::TcpDial(host, static_cast<uint16_t>(port), dial)));
  const serve::QueryResponse response = Unwrap(client.Query(request));

  const std::string label = dist::MechanismSpecName(request.spec);
  switch (response.kind) {
    case serve::QueryKind::kMine:
      // THE report of `frapp mine --run-pipeline` over the same spec:
      // stdout byte-diffs clean, which is how the smoke scripts prove a
      // served mine changed nothing.
      eval::PrintMiningReport(std::cout, schema, response.result, label,
                              request.min_support, top);
      break;
    case serve::QueryKind::kTopK: {
      std::cout << label << " top " << response.top.size()
                << " frequent itemset(s) (minsup = " << request.min_support
                << "):\n\n";
      eval::TextTable out({"support", "itemset"});
      for (const mining::FrequentItemset& f : response.top) {
        out.AddRow({eval::Cell(f.support, 9), f.itemset.ToString(schema)});
      }
      out.Print(std::cout);
      break;
    }
    case serve::QueryKind::kRules:
      eval::PrintRulesReport(std::cout, schema, response.rules, label,
                             request.min_confidence, top);
      break;
    case serve::QueryKind::kStats:
      // Plain key=value lines: what the smoke scripts grep to assert
      // coalescing (mine_runs stays 1 under N concurrent clients).
      std::cout << "queries=" << response.server.queries << "\n"
                << "mine_runs=" << response.server.mine_runs << "\n"
                << "cache_hits=" << response.server.cache_hits << "\n"
                << "coalesced=" << response.server.coalesced << "\n"
                << "store_hits=" << response.server.store_hits << "\n"
                << "store_misses=" << response.server.store_misses << "\n"
                << "cache_entries=" << response.server.cache_entries << "\n"
                << "cache_evictions=" << response.server.cache_evictions << "\n"
                << "rejected=" << response.server.rejected << "\n";
      break;
  }

  const char* outcome = response.outcome == serve::CacheOutcome::kHit
                            ? "hit"
                            : response.outcome == serve::CacheOutcome::kCoalesced
                                  ? "coalesced"
                                  : "miss";
  std::cerr << "query: outcome=" << outcome << " store_hits="
            << response.store_hits << " store_misses=" << response.store_misses
            << " delta_chunks=" << response.delta_chunks
            << " tail_rows=" << response.tail_rows
            << " elapsed_us=" << response.elapsed_micros
            << " server{queries=" << response.server.queries
            << " mine_runs=" << response.server.mine_runs
            << " cache_hits=" << response.server.cache_hits
            << " coalesced=" << response.server.coalesced << "}" << std::endl;
  return 0;
}

int CmdAudit(const Flags& flags) {
  const data::CategoricalSchema schema = SchemaFor(flags.Get("dataset"));
  const core::FrappDesign design = DesignFor(schema, flags);
  std::cout << design.Summary();
  std::cout << "domain size |S_U|     : " << schema.DomainSize() << "\n";
  std::cout << "record amplification  : " << design.mechanism->Amplification()
            << "\n";
  return 0;
}

int CmdConvert(const Flags& flags) {
  const data::CategoricalSchema schema = SchemaFor(flags.Get("dataset"));
  const std::string in = flags.Get("in");
  const std::string out = flags.Get("out");
  if (in.empty() || out.empty()) return Usage();
  // One-time offline step: parse the whole CSV (the last time its text is
  // ever parsed), then emit the pre-tokenized binary shards.
  const data::CategoricalTable table = Unwrap(data::ReadCsv(in, schema));
  UnwrapStatus(data::WriteBinaryTable(table, out));
  std::cout << "wrote " << table.num_rows() << " pre-tokenized records to "
            << out << " (schema fingerprint "
            << data::SchemaFingerprint(schema) << ")\n";
  return 0;
}

int CmdCpuinfo() {
  const common::CpuInfo& info = common::GetCpuInfo();
  std::cout << common::CpuInfoSummary(info);
  std::cout << "kernel dispatch:\n"
            << "  best supported    : "
            << mining::KernelLevelName(mining::BestSupportedLevel()) << "\n"
            << "  active            : "
            << mining::KernelLevelName(mining::ActiveKernels().level);
  const char* forced = std::getenv("FRAPP_FORCE_KERNEL");
  if (forced != nullptr && forced[0] != '\0') {
    std::cout << " (FRAPP_FORCE_KERNEL=" << forced << ")";
  }
  std::cout << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  const Flags flags(argc, argv, 2);
  if (command == "generate") return CmdGenerate(flags);
  if (command == "perturb") return CmdPerturb(flags);
  if (command == "mine") return CmdMine(flags);
  if (command == "append") return CmdAppend(flags);
  if (command == "audit") return CmdAudit(flags);
  if (command == "convert") return CmdConvert(flags);
  if (command == "worker") return CmdWorker(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "cpuinfo") return CmdCpuinfo();
  return Usage();
}
