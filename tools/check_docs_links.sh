#!/usr/bin/env bash
# Fails when README.md or docs/*.md contain relative markdown links to
# files that do not exist (lychee-style, no network: external http(s)/mailto
# links are skipped). Anchors are checked only for existence of the target
# file; `#fragment`-only links are resolved against the containing file.
#
# Usage: tools/check_docs_links.sh
# Exit:  0 all links resolve, 1 otherwise (each broken link is listed).

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo_root"

files=(README.md)
while IFS= read -r f; do files+=("$f"); done < <(find docs -name '*.md' | sort)

broken=0
for file in "${files[@]}"; do
  dir="$(dirname "$file")"
  # Extract the (target) of every [text](target) markdown link, tolerating
  # several links per line. Fenced code blocks (```...```) are skipped so
  # example snippets cannot trip the check.
  while IFS= read -r target; do
    [[ -z "$target" ]] && continue
    case "$target" in
      http://*|https://*|mailto:*) continue ;;  # external: not checked
    esac
    path="${target%%#*}"                        # drop the anchor
    [[ -z "$path" ]] && continue                # same-file #fragment
    if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
      echo "BROKEN: $file -> $target"
      broken=1
    fi
  done < <(awk '/^[[:space:]]*```/ { fenced = !fenced; next } !fenced' "$file" \
             | grep -oE '\[[^][]*\]\([^()[:space:]]+\)' \
             | sed -E 's/^\[[^][]*\]\(([^()]*)\)$/\1/')
done

if [[ "$broken" -ne 0 ]]; then
  echo "docs link check FAILED"
  exit 1
fi
echo "docs link check OK (${#files[@]} files)"
