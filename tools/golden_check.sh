#!/usr/bin/env bash
# Golden-report check: `frapp mine` output is a DETERMINISTIC function of
# (dataset, generator seed, mechanism spec, perturb seed, supmin) — same
# bytes on every machine, every run, every thread count. Each mechanism's
# report over the 16384-row seeded census table is byte-diffed against its
# checked-in fixture in tests/golden/; any drift in the perturbation, the
# mining order, or the report formatting fails loudly here.
#
# Usage: tools/golden_check.sh [build-dir] [mechanism]
#   build-dir  default: <repo-root>/build
#   mechanism  det-gd|ran-gd|mask|cp|ind-gd; default: all five

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
frapp="$build_dir/frapp_cli"

if [[ ! -x "$frapp" ]]; then
  echo "FATAL: $frapp not built (cmake --build $build_dir --target frapp_cli)" >&2
  exit 1
fi

mechanisms=(det-gd ran-gd mask cp ind-gd)
if [[ $# -ge 2 ]]; then
  mechanisms=("$2")
fi

# Fixture parameters — changing ANY of these requires regenerating every
# fixture (the header of each file names the mechanism and supmin).
rows=16384        # 2 whole chunks: chunk-aligned on purpose
gen_seed=5
perturb_seed=7
minsup=0.02
top=20

failures=0
for mech in "${mechanisms[@]}"; do
  golden="$repo_root/tests/golden/mine_${mech}_census16k.txt"
  if [[ ! -f "$golden" ]]; then
    echo "FATAL: missing fixture $golden" >&2
    exit 1
  fi
  if ! "$frapp" mine --dataset census --mechanism "$mech" --run-pipeline \
      --rows "$rows" --gen-seed "$gen_seed" --seed "$perturb_seed" \
      --minsup "$minsup" --top "$top" 2>/dev/null \
      | diff -u "$golden" -; then
    echo "FAIL: $mech report drifted from $golden" >&2
    failures=$((failures + 1))
  else
    echo "OK: $mech matches $(basename "$golden")"
  fi
done

if [[ "$failures" -ne 0 ]]; then
  echo "golden check: $failures mechanism(s) drifted" >&2
  exit 1
fi
echo "golden check: all reports byte-identical to fixtures"
