#!/usr/bin/env bash
# Mining-as-a-service smoke: a real `frapp serve` process on a loopback
# port, hit by real `frapp query` client processes — the cross-process half
# of what tests/serve/ proves in-process.
#
#   1. `frapp serve` starts on an ephemeral port (scraped from its banner)
#   2. 8 CONCURRENT identical mine queries -> byte-identical reports, and
#      the server's stats must show exactly ONE mine run (coalescing/cache)
#   3. the report byte-diffs against a local `frapp mine --run-pipeline`
#      of the same table and spec
#   4. a repeat query is a cache hit (outcome=hit on the client's stderr)
#   5. a sub-supmin drill-down re-perturbs nothing (delta_chunks=0,
#      tail_rows=0, store_hits>0) — served from the count store
#   6. topk/rules/stats queries answer
#   7. SIGTERM: the server drains and exits 0 (graceful shutdown)
#
# Usage: tools/serve_smoke.sh [build-dir]   (default: <repo-root>/build)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
frapp="$build_dir/frapp_cli"

if [[ ! -x "$frapp" ]]; then
  echo "FATAL: $frapp not built (cmake --build $build_dir --target frapp_cli)" >&2
  exit 1
fi

rows=16384        # 2 whole chunks: sub-supmin re-mines have no tail
gen_seed=5
seed=7
minsup=0.02
dataset=census

tmp_dir="$(mktemp -d)"
server_pid=""
cleanup() {
  if [[ -n "$server_pid" ]] && kill -0 "$server_pid" 2>/dev/null; then
    kill -9 "$server_pid" 2>/dev/null || true
  fi
  rm -rf "$tmp_dir"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# ------------------------------------------------------------- start server
"$frapp" serve --listen 0 --dataset "$dataset" --rows "$rows" \
  --gen-seed "$gen_seed" > "$tmp_dir/server.out" 2> "$tmp_dir/server.err" &
server_pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/.*frapp serve listening on [^:]*:\([0-9]*\).*/\1/p' \
    "$tmp_dir/server.out" | head -1)"
  [[ -n "$port" ]] && break
  kill -0 "$server_pid" 2>/dev/null || fail "server died during startup: $(cat "$tmp_dir/server.err")"
  sleep 0.1
done
[[ -n "$port" ]] || fail "no listening banner from server"
echo "serve_smoke: server up on port $port (pid $server_pid)"

query() {  # query <kind> <extra flags...>
  local kind="$1"; shift
  "$frapp" query --connect "127.0.0.1:$port" --dataset "$dataset" \
    --query "$kind" --mechanism det-gd --seed "$seed" --minsup "$minsup" "$@"
}

# ------------------------------------ 8 concurrent mines, ONE mine run total
pids=()
for i in $(seq 1 8); do
  query mine > "$tmp_dir/mine.$i.out" 2> "$tmp_dir/mine.$i.err" &
  pids+=($!)
done
for pid in "${pids[@]}"; do
  wait "$pid" || fail "concurrent mine client failed"
done
for i in $(seq 2 8); do
  diff "$tmp_dir/mine.1.out" "$tmp_dir/mine.$i.out" > /dev/null \
    || fail "concurrent clients received different reports (1 vs $i)"
done
echo "serve_smoke: 8 concurrent clients, byte-identical reports"

query stats > "$tmp_dir/stats.out" 2> /dev/null
mine_runs="$(sed -n 's/^mine_runs=//p' "$tmp_dir/stats.out")"
queries="$(sed -n 's/^queries=//p' "$tmp_dir/stats.out")"
[[ "$mine_runs" == "1" ]] \
  || fail "expected exactly 1 mine run for 8 identical queries, got $mine_runs"
echo "serve_smoke: $queries queries so far, mine_runs=$mine_runs (coalesced/cached)"

# ----------------------------------------- parity with a from-scratch mine
"$frapp" mine --dataset "$dataset" --mechanism det-gd --run-pipeline \
  --rows "$rows" --gen-seed "$gen_seed" --seed "$seed" --minsup "$minsup" \
  > "$tmp_dir/pipeline.out" 2> /dev/null
diff "$tmp_dir/pipeline.out" "$tmp_dir/mine.1.out" > /dev/null \
  || fail "served mine differs from --run-pipeline ground truth"
echo "serve_smoke: served report byte-identical to --run-pipeline"

# --------------------------------------------------- repeat => cache hit
query mine > /dev/null 2> "$tmp_dir/repeat.err"
grep -q 'outcome=hit' "$tmp_dir/repeat.err" \
  || fail "repeat query was not a cache hit: $(cat "$tmp_dir/repeat.err")"
echo "serve_smoke: repeat query outcome=hit"

# --------------------- sub-supmin drill-down: zero re-perturbation, store-fed
query mine --minsup 0.01 > "$tmp_dir/drill.out" 2> "$tmp_dir/drill.err"
grep -q 'outcome=miss' "$tmp_dir/drill.err" \
  || fail "sub-supmin drill-down unexpectedly cached: $(cat "$tmp_dir/drill.err")"
grep -q 'delta_chunks=0 tail_rows=0' "$tmp_dir/drill.err" \
  || fail "sub-supmin drill-down re-perturbed data: $(cat "$tmp_dir/drill.err")"
store_hits="$(sed -n 's/.*[[:space:]]store_hits=\([0-9]*\).*/\1/p' "$tmp_dir/drill.err" | head -1)"
[[ -n "$store_hits" && "$store_hits" -gt 0 ]] \
  || fail "sub-supmin drill-down did not reuse stored counts: $(cat "$tmp_dir/drill.err")"
"$frapp" mine --dataset "$dataset" --mechanism det-gd --run-pipeline \
  --rows "$rows" --gen-seed "$gen_seed" --seed "$seed" --minsup 0.01 \
  > "$tmp_dir/pipeline001.out" 2> /dev/null
diff "$tmp_dir/pipeline001.out" "$tmp_dir/drill.out" > /dev/null \
  || fail "sub-supmin served mine differs from --run-pipeline at 0.01"
echo "serve_smoke: sub-supmin 0.01 served from store (store_hits=$store_hits, zero re-perturbation)"

# ------------------------------------------------------------- topk + rules
query topk --top 5 > "$tmp_dir/topk.out" 2> /dev/null
[[ -s "$tmp_dir/topk.out" ]] || fail "empty topk report"
query rules --min-confidence 0.5 > "$tmp_dir/rules.out" 2> /dev/null
[[ -s "$tmp_dir/rules.out" ]] || fail "empty rules report"
echo "serve_smoke: topk and rules queries answered"

# ------------------------------------------------------- graceful shutdown
kill -TERM "$server_pid"
server_rc=0
wait "$server_pid" || server_rc=$?
[[ "$server_rc" -eq 0 ]] || fail "server exited $server_rc on SIGTERM"
grep -q 'serve:' "$tmp_dir/server.err" \
  || fail "server did not print its final stats line"
server_pid=""
echo "serve_smoke: graceful SIGTERM shutdown, $(grep 'serve:' "$tmp_dir/server.err")"

echo "serve_smoke: OK"
