#!/usr/bin/env bash
# Distributed-mining smoke: launches real `frapp worker` OS processes on
# loopback ports, mines through the coordinator, and asserts the report is
# byte-identical to the single-process pipeline's on the same data — the
# cross-process half of the bit-identity invariant the ctest grid proves
# in-process.
#
# Usage: tools/dist_smoke.sh [build-dir]    (default: <repo-root>/build)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
frapp="$build_dir/frapp_cli"

if [[ ! -x "$frapp" ]]; then
  echo "FATAL: $frapp not built (cmake --build $build_dir --target frapp_cli)" >&2
  exit 1
fi

rows=20000
gen_seed=321
perturb_seed=17
num_workers=2
tmp_dir="$(mktemp -d)"
worker_pids=()

cleanup() {
  for pid in "${worker_pids[@]}"; do
    kill "$pid" 2>/dev/null || true
  done
  rm -rf "$tmp_dir"
}
trap cleanup EXIT

# Every worker holds the SAME deterministic generated table and is assigned
# a disjoint row range by the coordinator; --once exits after one session.
# Workers bind ephemeral ports (--listen 0) and announce the real one on
# stdout, so the smoke never races another process for a fixed port.
launch_workers() {
  worker_pids=()
  endpoints=""
  for w in $(seq 1 "$num_workers"); do
    "$frapp" worker --listen 0 --dataset census \
      --rows "$rows" --gen-seed "$gen_seed" --once \
      > "$tmp_dir/worker_$w.log" 2>&1 &
    worker_pids+=($!)
  done
  for w in $(seq 1 "$num_workers"); do
    local port="" tries=0
    while [[ -z "$port" ]]; do
      port="$(sed -n 's/^frapp worker listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
              "$tmp_dir/worker_$w.log")"
      [[ -n "$port" ]] && break
      tries=$((tries + 1))
      if [[ $tries -gt 100 ]]; then
        echo "FAIL: worker $w never announced its port" >&2
        cat "$tmp_dir/worker_$w.log" >&2 || true
        exit 1
      fi
      sleep 0.1
    done
    endpoints="${endpoints:+$endpoints,}127.0.0.1:$port"
  done
}

for mechanism in det-gd mask; do
  echo "=== $mechanism: $num_workers workers vs single-process pipeline ==="
  launch_workers

  "$frapp" mine --dataset census --mechanism "$mechanism" \
    --workers "$endpoints" --rows "$rows" --seed "$perturb_seed" \
    > "$tmp_dir/dist_$mechanism.out" 2> "$tmp_dir/dist_$mechanism.err"

  "$frapp" mine --dataset census --mechanism "$mechanism" --run-pipeline \
    --rows "$rows" --gen-seed "$gen_seed" --seed "$perturb_seed" \
    > "$tmp_dir/local_$mechanism.out" 2> /dev/null

  if ! diff "$tmp_dir/local_$mechanism.out" "$tmp_dir/dist_$mechanism.out"; then
    echo "FAIL: $mechanism distributed output differs from the pipeline" >&2
    cat "$tmp_dir"/worker_*.log >&2 || true
    exit 1
  fi

  for pid in "${worker_pids[@]}"; do
    wait "$pid"
  done
  cat "$tmp_dir/dist_$mechanism.err"
  echo "OK: $mechanism parity holds"
done

echo "dist smoke passed: worker processes + coordinator match the pipeline"
