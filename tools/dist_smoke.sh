#!/usr/bin/env bash
# Distributed-mining smoke: launches real `frapp worker` OS processes on
# loopback ports, mines through the coordinator, and asserts the report is
# byte-identical to the single-process pipeline's on the same data — the
# cross-process half of the bit-identity invariant the ctest grid proves
# in-process.
#
# Scenario 2 is the fault-tolerance drill: 3 workers, one SIGKILLed the
# moment it enters the session. The coordinator must detect the death,
# re-assign the dead worker's rows to the survivors, and STILL produce the
# byte-identical report.
#
# Usage: tools/dist_smoke.sh [build-dir]    (default: <repo-root>/build)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
frapp="$build_dir/frapp_cli"

if [[ ! -x "$frapp" ]]; then
  echo "FATAL: $frapp not built (cmake --build $build_dir --target frapp_cli)" >&2
  exit 1
fi

rows=20000
gen_seed=321
perturb_seed=17
num_workers=2
tmp_dir="$(mktemp -d)"
worker_pids=()

cleanup() {
  # SIGKILL, not SIGTERM: a worker blocked in recv() must die NOW, and a
  # half-dead worker holding its port would poison a rerun.
  for pid in "${worker_pids[@]}"; do
    kill -9 "$pid" 2>/dev/null || true
  done
  for pid in "${worker_pids[@]}"; do
    wait "$pid" 2>/dev/null || true
  done
  rm -rf "$tmp_dir"
}
trap cleanup EXIT

# Every worker holds the SAME deterministic generated table and is assigned
# a disjoint row range by the coordinator; --once exits after one session.
# Workers bind ephemeral ports (--listen 0) and announce the real one on
# stdout, so the smoke never races another process for a fixed port.
# Set hang_worker=N to give worker N a FIFO with no writer as its input:
# it accepts the coordinator's session, then blocks forever in ingest — a
# deterministic stand-in for a hung or about-to-die worker (no timing
# races: it CANNOT answer until killed). Its data never matters because it
# never ingests a row.
launch_workers() {
  worker_pids=()
  endpoints=""
  for w in $(seq 1 "$num_workers"); do
    local src_args=(--rows "$rows" --gen-seed "$gen_seed")
    if [[ -n "${hang_worker:-}" && "$w" -eq "$hang_worker" ]]; then
      rm -f "$tmp_dir/hang.csv"
      mkfifo "$tmp_dir/hang.csv"
      src_args=(--in "$tmp_dir/hang.csv")
    fi
    "$frapp" worker --listen 0 --dataset census \
      "${src_args[@]}" --once \
      > "$tmp_dir/worker_$w.log" 2>&1 &
    worker_pids+=($!)
  done
  for w in $(seq 1 "$num_workers"); do
    local port="" tries=0
    while [[ -z "$port" ]]; do
      port="$(sed -n 's/^frapp worker listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
              "$tmp_dir/worker_$w.log")"
      [[ -n "$port" ]] && break
      tries=$((tries + 1))
      if [[ $tries -gt 100 ]]; then
        echo "FAIL: worker $w never announced its port" >&2
        cat "$tmp_dir/worker_$w.log" >&2 || true
        exit 1
      fi
      sleep 0.1
    done
    endpoints="${endpoints:+$endpoints,}127.0.0.1:$port"
  done
}

for mechanism in det-gd mask; do
  echo "=== $mechanism: $num_workers workers vs single-process pipeline ==="
  launch_workers

  "$frapp" mine --dataset census --mechanism "$mechanism" \
    --workers "$endpoints" --rows "$rows" --seed "$perturb_seed" \
    > "$tmp_dir/dist_$mechanism.out" 2> "$tmp_dir/dist_$mechanism.err"

  "$frapp" mine --dataset census --mechanism "$mechanism" --run-pipeline \
    --rows "$rows" --gen-seed "$gen_seed" --seed "$perturb_seed" \
    > "$tmp_dir/local_$mechanism.out" 2> /dev/null

  if ! diff "$tmp_dir/local_$mechanism.out" "$tmp_dir/dist_$mechanism.out"; then
    echo "FAIL: $mechanism distributed output differs from the pipeline" >&2
    cat "$tmp_dir"/worker_*.log >&2 || true
    exit 1
  fi

  for pid in "${worker_pids[@]}"; do
    wait "$pid"
  done
  cat "$tmp_dir/dist_$mechanism.err"
  echo "OK: $mechanism parity holds"
done

# --- Scenario 2: SIGKILL a worker mid-mine ----------------------------------
# 3 workers; worker 3 hangs in ingest (FIFO input), so the mine is pinned
# on its handshake ack when the SIGKILL lands (no FIN, no cleanup — the
# worst death; the kernel resets its sockets). The coordinator must declare
# it dead, re-assign its rows to the two survivors, and the final report
# must STILL be byte-identical to the pipeline's.
echo "=== recovery: 3 workers, worker 3 SIGKILLed mid-mine ==="
num_workers=3
hang_worker=3
launch_workers
hang_worker=""
victim_pid="${worker_pids[2]}"

"$frapp" mine --dataset census --mechanism det-gd \
  --workers "$endpoints" --rows "$rows" --seed "$perturb_seed" \
  --request-deadline-ms 10000 \
  > "$tmp_dir/dist_recovery.out" 2> "$tmp_dir/dist_recovery.err" &
coord_pid=$!

tries=0
until grep -q "accepted session" "$tmp_dir/worker_3.log" 2>/dev/null; do
  tries=$((tries + 1))
  if [[ $tries -gt 600 ]]; then
    echo "FAIL: worker 3 never entered a session" >&2
    kill "$coord_pid" 2>/dev/null || true
    exit 1
  fi
  sleep 0.05
done
kill -9 "$victim_pid"
echo "SIGKILLed worker 3 (pid $victim_pid) mid-mine"

if ! wait "$coord_pid"; then
  echo "FAIL: coordinator did not survive the worker kill" >&2
  cat "$tmp_dir/dist_recovery.err" >&2
  cat "$tmp_dir"/worker_*.log >&2 || true
  exit 1
fi
if ! diff "$tmp_dir/local_det-gd.out" "$tmp_dir/dist_recovery.out"; then
  echo "FAIL: recovered distributed output differs from the pipeline" >&2
  cat "$tmp_dir/dist_recovery.err" >&2
  exit 1
fi
if ! grep -q "dist recovery: 1 worker(s) failed" "$tmp_dir/dist_recovery.err"; then
  echo "FAIL: coordinator never reported the recovery" >&2
  cat "$tmp_dir/dist_recovery.err" >&2
  exit 1
fi
for pid in "${worker_pids[@]}"; do
  [[ "$pid" == "$victim_pid" ]] && continue
  wait "$pid"
done
wait "$victim_pid" 2>/dev/null || true
cat "$tmp_dir/dist_recovery.err"
echo "OK: kill-mid-mine recovery preserves parity"

# --- Scenario 2b: a HUNG worker (no death, no FIN — just silence) -----------
# Worker 3 hangs in ingest and is never killed during the mine: nothing
# ever closes its sockets, so only the receive DEADLINE can unmask it. The
# coordinator must time out its handshake ack, declare it dead, and
# recover to the identical report.
echo "=== recovery: 3 workers, worker 3 hung (deadline detection) ==="
num_workers=3
hang_worker=3
launch_workers
hang_worker=""
victim_pid="${worker_pids[2]}"

if ! "$frapp" mine --dataset census --mechanism det-gd \
  --workers "$endpoints" --rows "$rows" --seed "$perturb_seed" \
  --request-deadline-ms 2000 --retry-attempts 2 \
  > "$tmp_dir/dist_hung.out" 2> "$tmp_dir/dist_hung.err"; then
  echo "FAIL: coordinator did not survive the hung worker" >&2
  cat "$tmp_dir/dist_hung.err" >&2
  exit 1
fi
if ! diff "$tmp_dir/local_det-gd.out" "$tmp_dir/dist_hung.out"; then
  echo "FAIL: hung-worker output differs from the pipeline" >&2
  cat "$tmp_dir/dist_hung.err" >&2
  exit 1
fi
if ! grep -q "dist recovery: 1 worker(s) failed" "$tmp_dir/dist_hung.err"; then
  echo "FAIL: coordinator never reported the hung worker" >&2
  cat "$tmp_dir/dist_hung.err" >&2
  exit 1
fi
kill -9 "$victim_pid"
for pid in "${worker_pids[@]}"; do
  [[ "$pid" == "$victim_pid" ]] && continue
  wait "$pid"
done
wait "$victim_pid" 2>/dev/null || true
cat "$tmp_dir/dist_hung.err"
echo "OK: hung-worker deadline detection preserves parity"

# --- Scenario 3: deterministic fault injection ------------------------------
# No timing races: the coordinator's own connection to worker 1 is scripted
# (--fault-spec) to close right after the handshake, forcing the same
# dead-worker re-assignment path on every run.
echo "=== fault injection: worker 1's connection closes after its handshake ==="
rows=20000
num_workers=2
launch_workers

"$frapp" mine --dataset census --mechanism det-gd \
  --workers "$endpoints" --rows "$rows" --seed "$perturb_seed" \
  --fault-spec "1:close-recv=1" \
  > "$tmp_dir/dist_fault.out" 2> "$tmp_dir/dist_fault.err"

if ! diff "$tmp_dir/local_det-gd.out" "$tmp_dir/dist_fault.out"; then
  echo "FAIL: fault-injected output differs from the pipeline" >&2
  cat "$tmp_dir/dist_fault.err" >&2
  exit 1
fi
if ! grep -q "dist recovery: 1 worker(s) failed" "$tmp_dir/dist_fault.err"; then
  echo "FAIL: coordinator never reported the injected failure" >&2
  cat "$tmp_dir/dist_fault.err" >&2
  exit 1
fi
# Worker 1's session ends with a transport error (its peer vanished), so
# only worker 0 is expected to exit cleanly.
wait "${worker_pids[0]}"
wait "${worker_pids[1]}" 2>/dev/null || true
cat "$tmp_dir/dist_fault.err"
echo "OK: injected-fault recovery preserves parity"

echo "dist smoke passed: parity, kill + hung recovery, injected faults"
