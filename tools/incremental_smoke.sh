#!/usr/bin/env bash
# Incremental-mining smoke: the append-twice workflow across real `frapp`
# process invocations, with the count store persisted on disk between them —
# the cross-process half of the bit-identity invariant the ctest grid proves
# in-process.
#
#   1. generate + convert a census table to the binary shard format
#   2. mine it with --count-store (store file created)
#   3. `frapp append` grows the binary table in place (twice: once inside
#      the tail chunk, once crossing a chunk boundary), re-mining with the
#      store after each append — only the delta is perturbed
#   4. every store-backed report is byte-diffed against a from-scratch
#      `--run-pipeline` mine of the same grown file
#
# Usage: tools/incremental_smoke.sh [build-dir]   (default: <repo-root>/build)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
frapp="$build_dir/frapp_cli"

if [[ ! -x "$frapp" ]]; then
  echo "FATAL: $frapp not built (cmake --build $build_dir --target frapp_cli)" >&2
  exit 1
fi

rows=24576        # 3 whole chunks
gen_seed=5
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

table="$tmp_dir/census.bin"
store="$tmp_dir/census.frappcnt"

"$frapp" generate --dataset census --rows "$rows" --seed "$gen_seed" \
  --out "$tmp_dir/census.csv" > /dev/null
"$frapp" convert --dataset census --in "$tmp_dir/census.csv" \
  --out "$table" > /dev/null

check_parity() {
  local label="$1"
  "$frapp" mine --dataset census --in "$table" --count-store "$store" \
    > "$tmp_dir/inc.out" 2> "$tmp_dir/inc.err"
  "$frapp" mine --dataset census --run-pipeline --in "$table" \
    > "$tmp_dir/full.out" 2> /dev/null
  if ! diff "$tmp_dir/full.out" "$tmp_dir/inc.out"; then
    echo "FAIL: $label store-backed report differs from the pipeline" >&2
    cat "$tmp_dir/inc.err" >&2
    exit 1
  fi
  cat "$tmp_dir/inc.err"
  echo "OK: $label parity holds"
}

echo "=== first mine: store created ==="
check_parity "initial"
if ! grep -q "store created" "$tmp_dir/inc.err"; then
  echo "FAIL: first mine did not create the store" >&2
  exit 1
fi

echo "=== append inside the tail chunk (+5000 rows) ==="
"$frapp" append --dataset census --out "$table" --rows 5000 \
  --gen-seed "$gen_seed"
check_parity "tail-append"
if ! grep -q "store loaded" "$tmp_dir/inc.err"; then
  echo "FAIL: re-mine did not load the saved store" >&2
  exit 1
fi
if ! grep -q "0 delta chunk(s) perturbed" "$tmp_dir/inc.err"; then
  echo "FAIL: a tail-only append should perturb no whole chunks" >&2
  exit 1
fi

echo "=== append crossing a chunk boundary (+10000 rows) ==="
"$frapp" append --dataset census --out "$table" --rows 10000 \
  --gen-seed "$gen_seed"
check_parity "chunk-append"
if ! grep -q "1 delta chunk(s) perturbed" "$tmp_dir/inc.err"; then
  echo "FAIL: expected exactly one newly completed chunk to be perturbed" >&2
  exit 1
fi

echo "incremental smoke passed: store-backed re-mines are byte-identical"
