#!/usr/bin/env bash
# Builds Release and emits the perf-trajectory JSON files at the repo root:
#   BENCH_mining.json       — apriori_benchmark (vertical index vs scalar)
#   BENCH_perturbation.json — perturbation_benchmark (alias kernel vs naive)
# google-benchmark JSON, one file per suite; successive PRs append their own
# runs next to these to track the trajectory.
#
# Usage: tools/run_benchmarks.sh [build-dir] (default: build)

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc)" \
  --target apriori_benchmark perturbation_benchmark

"$build_dir/apriori_benchmark" \
  --benchmark_out="$repo_root/BENCH_mining.json" \
  --benchmark_out_format=json
"$build_dir/perturbation_benchmark" \
  --benchmark_out="$repo_root/BENCH_perturbation.json" \
  --benchmark_out_format=json

echo "Wrote $repo_root/BENCH_mining.json and $repo_root/BENCH_perturbation.json"
