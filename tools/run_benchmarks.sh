#!/usr/bin/env bash
# Builds Release and maintains the perf-trajectory JSON files at the repo root.
#
# Usage: tools/run_benchmarks.sh [build-dir]
#
#   build-dir   CMake build directory to (re)configure and build
#               (default: <repo-root>/build)
#   -h, --help  print this header and exit
#
# Maintained trajectories (see docs/BENCHMARKS.md for the full schema):
#   BENCH_mining.json       — apriori_benchmark (vertical index vs scalar)
#   BENCH_perturbation.json — perturbation_benchmark (alias kernel vs naive)
#   BENCH_pipeline.json     — pipeline_benchmark (shards x threads sweep)
#   BENCH_ingest.json       — ingest_benchmark (preloaded vs streamed CSV /
#                             prefetched / binary / synthetic sources)
#   BENCH_dist.json         — dist_benchmark (worker-count sweep of the
#                             distributed coordinator/worker path:
#                             bytes-on-wire + merge-time counters vs the
#                             in-process pipeline baseline)
#   BENCH_incremental.json  — incremental_benchmark (store-backed re-mine
#                             after +10% / +1 / +4 / +16-chunk growth vs
#                             the from-scratch pipeline, supmin sweep)
#
# Each file holds {"runs": [<google-benchmark output>, ...]}: every
# invocation APPENDS its run (with its context/date) to the trajectory
# instead of overwriting it, so successive PRs accumulate a perf history.
# A pre-existing single-run file (the PR-1 format) is wrapped as the first
# trajectory entry on the next append. Numbers from the single-core CI
# container measure work distribution (CPU time), not wall-clock speedup —
# see the caveat in docs/BENCHMARKS.md.
#
# Context: each run records authoritative frapp keys (frapp_build_type,
# frapp_kernel_level, cache geometry, ...) via FRAPP_BENCHMARK_MAIN();
# ignore the library's own library_build_type, which describes the prebuilt
# google-benchmark .so. Runs whose frapp_build_type is not Release are
# REFUSED at merge time so debug numbers can never pollute a trajectory.
#
# Knobs (environment):
#   FRAPP_FORCE_KERNEL={scalar,avx2,avx512}
#               force the intersect+popcount dispatch level for the run;
#               the level lands in the run's frapp_kernel_level /
#               frapp_kernel_forced context keys. Unsupported levels fall
#               back to the best the host can run (with a warning).
#
# Thread pinning (PipelineOptions::pin_threads / frapp --pin-threads) is a
# per-process option, not an env knob; pipeline_benchmark runs unpinned.

set -euo pipefail

if [[ "${1:-}" == "-h" || "${1:-}" == "--help" ]]; then
  # Print the header comment above (minus the shebang) as the usage text.
  sed -n '2,/^set -euo/p' "$0" | sed '$d' | sed 's/^# \{0,1\}//'
  exit 0
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" -j"$(nproc)" \
  --target apriori_benchmark perturbation_benchmark pipeline_benchmark \
  ingest_benchmark dist_benchmark incremental_benchmark

# Appends the single-run google-benchmark JSON $2 to the trajectory file $1.
merge_run() {
  local trajectory="$1" new_run="$2"
  python3 - "$trajectory" "$new_run" <<'PY'
import json
import os
import sys

trajectory_path, new_run_path = sys.argv[1], sys.argv[2]
with open(new_run_path) as f:
    new_run = json.load(f)

# Never merge a non-Release run into a trajectory. frapp_build_type is the
# authoritative key (library_build_type describes the prebuilt benchmark
# .so, which Debian ships as "debug").
build_type = new_run.get("context", {}).get("frapp_build_type")
if build_type != "Release":
    sys.exit(f"REFUSED: run has frapp_build_type={build_type!r}, "
             f"want 'Release'; not merging into {trajectory_path}")

runs = []
try:
    with open(trajectory_path) as f:
        existing = json.load(f)
    # Wrap a legacy single-run file; keep an existing trajectory as is.
    runs = existing["runs"] if "runs" in existing else [existing]
except FileNotFoundError:
    pass
except json.JSONDecodeError:
    # Never silently discard an accumulated trajectory: preserve the
    # unparseable file next to the fresh one and say so.
    backup = trajectory_path + ".corrupt"
    os.replace(trajectory_path, backup)
    print(f"WARNING: {trajectory_path} was not valid JSON; "
          f"moved it to {backup} and started a fresh trajectory",
          file=sys.stderr)

runs.append(new_run)
with open(trajectory_path, "w") as f:
    json.dump({"runs": runs}, f, indent=1)
    f.write("\n")
print(f"{trajectory_path}: {len(runs)} run(s)")
PY
}

tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT

run_suite() {
  local benchmark="$1" trajectory="$2"
  "$build_dir/$benchmark" \
    --benchmark_out="$tmp_dir/$benchmark.json" \
    --benchmark_out_format=json
  merge_run "$repo_root/$trajectory" "$tmp_dir/$benchmark.json"
}

run_suite apriori_benchmark BENCH_mining.json
run_suite perturbation_benchmark BENCH_perturbation.json
run_suite pipeline_benchmark BENCH_pipeline.json
run_suite ingest_benchmark BENCH_ingest.json
run_suite dist_benchmark BENCH_dist.json
run_suite incremental_benchmark BENCH_incremental.json

echo "Appended runs to BENCH_mining.json, BENCH_perturbation.json, BENCH_pipeline.json, BENCH_ingest.json, BENCH_dist.json, BENCH_incremental.json"
